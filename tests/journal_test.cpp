// Crash-durability tests for the write-ahead trial journal (DESIGN §5.9):
// header fingerprint refusal, torn-tail recovery over a bit-flip and
// short-write corpus, deterministic replay, the kill-index sweep (a journal
// truncated after k of T commits resumes to the byte-identical report while
// re-measuring exactly T-k trials, at trial-workers 1 and 4), best-effort
// append/fsync fault behavior, and job-server restart re-admission from
// journal_dir manifests.
//
// The sweep here rewrites journal prefixes in-process (a crash after commit
// k leaves exactly the first k records — create+append_trial reproduces
// that file byte-for-byte minus fsync timing, which is not on disk anyway).
// The REAL kill path — SIGKILL mid-run via the crash.after_commit fault
// site, exit 137, resume in a fresh process — is exercised end-to-end by
// tools/run_crash_torture and the CI crash-smoke job.
#include <gtest/gtest.h>

#include <cstdio>
#include <filesystem>
#include <fstream>
#include <sstream>
#include <string>
#include <vector>

#include "common/fault.hpp"
#include "tuning/baselines.hpp"
#include "tuning/job_server.hpp"
#include "tuning/journal.hpp"
#include "tuning/model_server.hpp"
#include "tuning/report_io.hpp"

namespace edgetune {
namespace {

EdgeTuneOptions small_options(std::uint64_t seed = 3) {
  EdgeTuneOptions options;
  options.workload = WorkloadKind::kNlp;
  options.search_algorithm = "random";
  options.random_trials = 5;
  options.runner.proxy_samples = 300;
  options.inference.algorithm = "grid";
  options.seed = seed;
  return options;
}

std::string temp_path(const std::string& name) {
  return ::testing::TempDir() + "/" + name;
}

std::string read_bytes(const std::string& path) {
  std::ifstream in(path, std::ios::binary);
  std::ostringstream buffer;
  buffer << in.rdbuf();
  return buffer.str();
}

void write_bytes(const std::string& path, const std::string& bytes) {
  std::ofstream out(path, std::ios::binary | std::ios::trunc);
  out.write(bytes.data(), static_cast<std::streamsize>(bytes.size()));
}

TrialMeasurement sample_measurement(int i) {
  TrialMeasurement m;
  m.arch_id = "arch-" + std::to_string(i);
  m.outcome.accuracy = 0.5 + 0.01 * i;
  m.outcome.train_time_s = 10.0 + i;
  m.outcome.train_energy_j = 100.0 + i;
  m.outcome.arch_id = m.arch_id;
  return m;
}

/// Writes a journal with `n` synthetic records and returns its raw bytes.
std::string build_journal(const std::string& path,
                          const EdgeTuneOptions& options, int n) {
  FaultInjector no_faults;
  Result<std::unique_ptr<TrialJournal>> journal =
      TrialJournal::create(path, options, no_faults);
  EXPECT_TRUE(journal.ok()) << journal.status().to_string();
  for (int i = 0; i < n; ++i) {
    EXPECT_TRUE(journal.value()
                    ->append_trial("key-" + std::to_string(i),
                                   sample_measurement(i))
                    .is_ok());
  }
  journal.value().reset();  // close
  return read_bytes(path);
}

// --- Header fingerprint / seed refusal -------------------------------------

TEST(JournalTest, ResumeRefusesMismatchedSeed) {
  const std::string path = temp_path("fp_seed.journal");
  build_journal(path, small_options(3), 2);
  std::vector<JournalRecord> replay;
  FaultInjector no_faults;
  Result<std::unique_ptr<TrialJournal>> resumed =
      TrialJournal::resume(path, small_options(4), no_faults, &replay);
  ASSERT_FALSE(resumed.ok());
  EXPECT_EQ(resumed.status().code(), StatusCode::kFailedPrecondition);
  EXPECT_NE(resumed.status().to_string().find("seed"), std::string::npos);
}

TEST(JournalTest, ResumeRefusesMismatchedOptions) {
  const std::string path = temp_path("fp_opts.journal");
  build_journal(path, small_options(), 2);
  EdgeTuneOptions other = small_options();
  other.random_trials = 7;  // a different search commits different trials
  std::vector<JournalRecord> replay;
  FaultInjector no_faults;
  Result<std::unique_ptr<TrialJournal>> resumed =
      TrialJournal::resume(path, other, no_faults, &replay);
  ASSERT_FALSE(resumed.ok());
  EXPECT_EQ(resumed.status().code(), StatusCode::kFailedPrecondition);
  EXPECT_NE(resumed.status().to_string().find("fingerprint"),
            std::string::npos);
}

// The crash/journal fault sites must NOT shape the fingerprint: a crash
// drill records with the kill switch armed and resumes without it.
TEST(JournalTest, JournalFaultSitesDoNotChangeFingerprint) {
  EdgeTuneOptions plain = small_options();
  EdgeTuneOptions armed = small_options();
  armed.faults.push_back({std::string(fault_site::kCrashAfterCommit),
                          0.0, 3, StatusCode::kUnavailable});
  armed.inference.faults = armed.faults;
  EXPECT_EQ(journal_fingerprint(plain), journal_fingerprint(armed));

  EdgeTuneOptions real_fault = small_options();
  real_fault.faults.push_back({std::string(fault_site::kTrialTrain), 0.0, 1,
                               StatusCode::kUnavailable});
  EXPECT_NE(journal_fingerprint(plain), journal_fingerprint(real_fault));
}

// --- Torn-tail recovery -----------------------------------------------------

TEST(JournalTest, ShortWriteCorpusNeverCrashesAndKeepsIntactPrefix) {
  const std::string path = temp_path("torn.journal");
  const EdgeTuneOptions options = small_options();
  const std::string full = build_journal(path, options, 3);

  Result<std::vector<JournalRecord>> all =
      TrialJournal::read_all(path, options);
  ASSERT_TRUE(all.ok()) << all.status().to_string();
  ASSERT_EQ(all.value().size(), 3u);

  // Every possible crash point mid-write: truncate to each prefix length.
  // Recovery must never error on a well-formed header — it returns the
  // intact record prefix — and must refuse only a torn header.
  std::size_t last_count = 0;
  for (std::size_t len = full.size(); len > 0; --len) {
    write_bytes(path, full.substr(0, len - 1));
    Result<std::vector<JournalRecord>> records =
        TrialJournal::read_all(path, options);
    if (records.ok()) {
      EXPECT_LE(records.value().size(), 3u);
      EXPECT_LE(records.value().size(), last_count == 0
                                            ? records.value().size()
                                            : last_count);
      last_count = records.value().size();
      for (std::size_t i = 0; i < records.value().size(); ++i) {
        EXPECT_EQ(records.value()[i].key, "key-" + std::to_string(i));
      }
    } else {
      // Only acceptable once the header itself is torn.
      EXPECT_EQ(records.status().code(), StatusCode::kFailedPrecondition);
    }
  }
}

TEST(JournalTest, BitFlipCorpusDropsFromTheFlippedRecordOn) {
  const std::string path = temp_path("flip.journal");
  const EdgeTuneOptions options = small_options();
  const std::string full = build_journal(path, options, 3);

  // Flip one bit at a stride through the file: the CRC must stop replay at
  // (or before) the corrupted record, never return garbage decoded data.
  for (std::size_t pos = 0; pos < full.size(); pos += 7) {
    std::string corrupt = full;
    corrupt[pos] = static_cast<char>(corrupt[pos] ^ 0x40);
    write_bytes(path, corrupt);
    Result<std::vector<JournalRecord>> records =
        TrialJournal::read_all(path, options);
    if (records.ok()) {
      EXPECT_LE(records.value().size(), 3u);
      for (std::size_t i = 0; i < records.value().size(); ++i) {
        EXPECT_EQ(records.value()[i].key, "key-" + std::to_string(i));
      }
    } else {
      EXPECT_EQ(records.status().code(), StatusCode::kFailedPrecondition);
    }
  }
}

TEST(JournalTest, ResumeTruncatesTornTailAndAppendsCleanly) {
  const std::string path = temp_path("truncate.journal");
  const EdgeTuneOptions options = small_options();
  const std::string full = build_journal(path, options, 3);

  // Tear the last record mid-payload, resume, append a replacement: the
  // journal must end up with 2 intact originals + 1 new record.
  write_bytes(path, full.substr(0, full.size() - 5));
  std::vector<JournalRecord> replay;
  FaultInjector no_faults;
  Result<std::unique_ptr<TrialJournal>> resumed =
      TrialJournal::resume(path, options, no_faults, &replay);
  ASSERT_TRUE(resumed.ok()) << resumed.status().to_string();
  ASSERT_EQ(replay.size(), 2u);
  EXPECT_EQ(resumed.value()->records(), 2u);
  ASSERT_TRUE(
      resumed.value()->append_trial("key-new", sample_measurement(9)).is_ok());
  resumed.value().reset();

  Result<std::vector<JournalRecord>> records =
      TrialJournal::read_all(path, options);
  ASSERT_TRUE(records.ok());
  ASSERT_EQ(records.value().size(), 3u);
  EXPECT_EQ(records.value()[2].key, "key-new");
}

// --- Replay determinism: measurements round-trip exactly --------------------

TEST(JournalTest, RecordsRoundTripThroughReadAll) {
  const std::string path = temp_path("roundtrip.journal");
  const EdgeTuneOptions options = small_options();
  build_journal(path, options, 4);
  Result<std::vector<JournalRecord>> records =
      TrialJournal::read_all(path, options);
  ASSERT_TRUE(records.ok());
  ASSERT_EQ(records.value().size(), 4u);
  for (int i = 0; i < 4; ++i) {
    const JournalRecord& r = records.value()[static_cast<std::size_t>(i)];
    const TrialMeasurement want = sample_measurement(i);
    EXPECT_EQ(r.key, "key-" + std::to_string(i));
    EXPECT_EQ(trial_measurement_to_json(r.measurement).dump(),
              trial_measurement_to_json(want).dump());
  }
}

// --- The kill-index sweep ---------------------------------------------------

struct SweepCase {
  int trial_workers;
};

class JournalSweepTest : public ::testing::TestWithParam<SweepCase> {};

// For every kill index k in {1..T}: a journal holding exactly the first k
// committed trials resumes to the byte-identical report while re-measuring
// exactly T-k trials (replaying k). This is the PR's acceptance property.
TEST_P(JournalSweepTest, EveryKillIndexResumesByteIdentical) {
  const int workers = GetParam().trial_workers;
  EdgeTuneOptions options = small_options();
  options.trial_workers = workers;

  // Uninterrupted baseline, no journal.
  Result<TuningReport> baseline = EdgeTune(options).run();
  ASSERT_TRUE(baseline.ok()) << baseline.status().to_string();
  const std::string want = report_to_json(baseline.value()).dump();

  // Uninterrupted journaled run: same report, and the full record log.
  const std::string full_path =
      temp_path("sweep_full_w" + std::to_string(workers) + ".journal");
  EdgeTuneOptions journaled = options;
  journaled.journal_path = full_path;
  {
    EdgeTune tuner(journaled);
    Result<TuningReport> report = tuner.run();
    ASSERT_TRUE(report.ok()) << report.status().to_string();
    EXPECT_EQ(report_to_json(report.value()).dump(), want)
        << "journaling itself must not change the report";
    EXPECT_EQ(tuner.journal_replayed(), 0u);
  }
  Result<std::vector<JournalRecord>> all =
      TrialJournal::read_all(full_path, options);
  ASSERT_TRUE(all.ok()) << all.status().to_string();
  const std::vector<JournalRecord>& records = all.value();
  const std::size_t total = records.size();
  ASSERT_GE(total, 2u);

  FaultInjector no_faults;
  for (std::size_t k = 1; k <= total; ++k) {
    // A crash after commit k leaves exactly the first k records.
    const std::string k_path = temp_path(
        "sweep_k" + std::to_string(k) + "_w" + std::to_string(workers) +
        ".journal");
    {
      Result<std::unique_ptr<TrialJournal>> prefix =
          TrialJournal::create(k_path, options, no_faults);
      ASSERT_TRUE(prefix.ok());
      for (std::size_t i = 0; i < k; ++i) {
        ASSERT_TRUE(prefix.value()
                        ->append_trial(records[i].key, records[i].measurement)
                        .is_ok());
      }
    }
    EdgeTuneOptions resume_options = options;
    resume_options.journal_path = k_path;
    resume_options.resume = true;
    EdgeTune tuner(resume_options);
    Result<TuningReport> report = tuner.run();
    ASSERT_TRUE(report.ok()) << "k=" << k << ": "
                             << report.status().to_string();
    EXPECT_EQ(report_to_json(report.value()).dump(), want)
        << "resume after kill index " << k << " diverged";
    EXPECT_EQ(tuner.journal_replayed(), k) << "k=" << k;
    EXPECT_EQ(tuner.journal_measured(), total - k)
        << "k=" << k << ": must re-measure exactly the missing tail";
  }
}

INSTANTIATE_TEST_SUITE_P(
    Workers, JournalSweepTest,
    ::testing::Values(SweepCase{1}, SweepCase{4}),
    [](const ::testing::TestParamInfo<SweepCase>& info) {
      return "trial_workers_" + std::to_string(info.param.trial_workers);
    });

// --- Best-effort journaling under injected IO faults ------------------------

TEST(JournalTest, AppendFaultDisablesJournalingButTuningSucceeds) {
  EdgeTuneOptions options = small_options();
  options.journal_path = temp_path("append_fault.journal");
  options.faults.push_back({std::string(fault_site::kJournalAppend), 0.0, 1,
                            StatusCode::kIo});
  Result<TuningReport> baseline = EdgeTune(small_options()).run();
  ASSERT_TRUE(baseline.ok());

  EdgeTune tuner(options);
  Result<TuningReport> report = tuner.run();
  ASSERT_TRUE(report.ok()) << report.status().to_string();
  EXPECT_EQ(report_to_json(report.value()).dump(),
            report_to_json(baseline.value()).dump())
      << "journaling is best-effort: an append failure must not change "
         "the tuning result";
  EXPECT_EQ(tuner.journal_append_failures(), 1u)
      << "the first failure disables the journal; no further appends";
}

TEST(JournalTest, FsyncFaultIsCountedNotFatal) {
  EdgeTuneOptions options = small_options();
  options.journal_path = temp_path("fsync_fault.journal");
  options.faults.push_back({std::string(fault_site::kJournalFsync), 0.0, 1,
                            StatusCode::kIo});
  EdgeTune tuner(options);
  Result<TuningReport> report = tuner.run();
  ASSERT_TRUE(report.ok()) << report.status().to_string();
  EXPECT_GE(tuner.journal_fsync_failures(), 1u);
  // The journal is still complete and resumable: fsync failures only lose
  // the power-loss guarantee, not the kill-safety one.
  Result<std::vector<JournalRecord>> records =
      TrialJournal::read_all(options.journal_path, small_options());
  ASSERT_TRUE(records.ok()) << records.status().to_string();
  EXPECT_EQ(records.value().size(), tuner.journal_measured());
}

// --- run() validations ------------------------------------------------------

TEST(JournalTest, ResumeWithoutJournalPathIsRefused) {
  EdgeTuneOptions options = small_options();
  options.resume = true;
  Result<TuningReport> report = EdgeTune(options).run();
  ASSERT_FALSE(report.ok());
  EXPECT_EQ(report.status().code(), StatusCode::kInvalidArgument);
}

TEST(JournalTest, JournalWithPersistentCacheIsRefused) {
  EdgeTuneOptions options = small_options();
  options.journal_path = temp_path("refused.journal");
  options.inference.cache_path = temp_path("cache.json");
  Result<TuningReport> report = EdgeTune(options).run();
  ASSERT_FALSE(report.ok());
  EXPECT_EQ(report.status().code(), StatusCode::kInvalidArgument);
}

TEST(JournalTest, HierarchicalWithJournalIsRefused) {
  EdgeTuneOptions options = small_options();
  options.journal_path = temp_path("hier.journal");
  Result<TuningReport> report = run_hierarchical(options);
  ASSERT_FALSE(report.ok());
  EXPECT_EQ(report.status().code(), StatusCode::kInvalidArgument);
}

// --- Job-server restart re-admission ----------------------------------------

TEST(JournalTest, JobServerRecoversManifestedJobAfterRestart) {
  const std::string dir = temp_path("svc_journal_dir");
  std::filesystem::create_directories(dir);

  // A manifest left behind by a crashed incarnation: the job was admitted
  // (manifest durably written) but never finished (journal holds a prefix
  // of its trials — here a full journaled run stands in for it; recovery
  // replays everything and just finalizes).
  JobRequest request;
  request.options = small_options();
  request.options.journal_path = dir + "/job-1.journal";
  request.tenant = "restarted";
  {
    EdgeTuneOptions journaled = request.options;
    EdgeTune tuner(journaled);
    Result<TuningReport> report = tuner.run();
    ASSERT_TRUE(report.ok()) << report.status().to_string();
  }
  write_bytes(dir + "/job-1.manifest.json",
              job_request_to_json(request).dump_pretty() + "\n");

  TuningServiceOptions service;
  service.workers = 1;
  service.journal_dir = dir;
  TuningJobServer server(service);
  EXPECT_EQ(server.stats().recovered, 1u);
  const std::vector<JobId> ids = server.jobs();
  ASSERT_EQ(ids.size(), 1u);
  Result<TuningReport> report = server.wait(ids[0]);
  ASSERT_TRUE(report.ok()) << report.status().to_string();

  // Byte parity with a plain run of the same options.
  Result<TuningReport> plain = EdgeTune(small_options()).run();
  ASSERT_TRUE(plain.ok());
  EXPECT_EQ(report_to_json(report.value()).dump(),
            report_to_json(plain.value()).dump());

  // Terminal job: durability files are gone.
  EXPECT_FALSE(std::filesystem::exists(dir + "/job-1.manifest.json"));
  EXPECT_FALSE(std::filesystem::exists(dir + "/job-1.journal"));
}

TEST(JournalTest, JobServerWritesManifestForSubmittedJobs) {
  const std::string dir = temp_path("svc_manifest_dir");
  std::filesystem::create_directories(dir);
  TuningServiceOptions service;
  service.workers = 1;
  service.journal_dir = dir;
  TuningJobServer server(service);

  JobRequest request;
  request.options = small_options();
  Result<JobId> id = server.submit(request);
  ASSERT_TRUE(id.ok()) << id.status().to_string();
  Result<TuningReport> report = server.wait(id.value());
  ASSERT_TRUE(report.ok()) << report.status().to_string();
  // Completed cleanly: nothing left to recover.
  EXPECT_FALSE(std::filesystem::exists(dir + "/job-1.manifest.json"));
  EXPECT_FALSE(std::filesystem::exists(dir + "/job-1.journal"));
}

TEST(JournalTest, JobRequestJsonRoundTripsExactly) {
  JobRequest request;
  request.options = small_options(0xDEADBEEFDEADBEEFull);
  request.options.trial_workers = 3;
  request.options.journal_path = "/tmp/x.journal";
  request.options.faults.push_back(
      {std::string(fault_site::kTrialTrain), 0.25, 2, StatusCode::kIo});
  request.system = JobSystem::kTune;
  request.power_cap_w = 123.5;
  request.tenant = "t0";
  request.priority = 4;

  Result<JobRequest> back = job_request_from_json(job_request_to_json(request));
  ASSERT_TRUE(back.ok()) << back.status().to_string();
  EXPECT_EQ(job_request_to_json(back.value()).dump(),
            job_request_to_json(request).dump());
  EXPECT_EQ(back.value().options.seed, request.options.seed);
  EXPECT_EQ(journal_fingerprint(back.value().options),
            journal_fingerprint(request.options));
}

}  // namespace
}  // namespace edgetune
