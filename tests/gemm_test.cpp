// Tests for the blocked GEMM core (tensor/gemm.hpp): bitwise identity against
// ascending-k naive references across awkward shapes, epilogue fusion
// (bias + NCHW scatter), identical code paths for dense and sparse-ish
// operands, parallel == serial determinism, and zero steady-state heap
// allocations for the conv workspace arena.
#include <atomic>
#include <cmath>
#include <cstdint>
#include <cstdlib>
#include <new>
#include <random>
#include <vector>

#include <gtest/gtest.h>

#include "common/rng.hpp"
#include "nn/conv.hpp"
#include "tensor/gemm.hpp"
#include "tensor/ops.hpp"
#include "tensor/tensor.hpp"

namespace {

// Global allocation counter wired into operator new, for the zero-allocation
// steady-state test. Relaxed atomics: the counting sections run single-thread.
std::atomic<std::int64_t> g_alloc_count{0};
std::atomic<bool> g_count_allocs{false};

}  // namespace

void* operator new(std::size_t size) {
  if (g_count_allocs.load(std::memory_order_relaxed)) {
    g_alloc_count.fetch_add(1, std::memory_order_relaxed);
  }
  if (void* p = std::malloc(size)) return p;
  throw std::bad_alloc();
}

void operator delete(void* p) noexcept { std::free(p); }
void operator delete(void* p, std::size_t) noexcept { std::free(p); }

namespace edgetune {
namespace {

Tensor random_tensor(const Shape& shape, std::mt19937& rng) {
  Tensor t(shape);
  std::uniform_real_distribution<float> dist(-1.0f, 1.0f);
  for (std::int64_t i = 0; i < t.numel(); ++i) t.data()[i] = dist(rng);
  return t;
}

// Ascending-k naive references with the rounding behaviour of the seed
// kernels made explicit (independent of -ffp-contract): matmul/matmul_tn
// compiled to fused multiply-adds, matmul_nt's scalar reduction compiled to
// separately-rounded products. Bitwise agreement with these is the
// determinism contract of the blocked core.
Tensor naive_nn(const Tensor& a, const Tensor& b) {
  const std::int64_t m = a.dim(0), k = a.dim(1), n = b.dim(1);
  Tensor c({m, n});
  for (std::int64_t i = 0; i < m; ++i) {
    for (std::int64_t kk = 0; kk < k; ++kk) {
      const float av = a.data()[i * k + kk];
      for (std::int64_t j = 0; j < n; ++j) {
        float& cj = c.data()[i * n + j];
        cj = std::fmaf(av, b.data()[kk * n + j], cj);
      }
    }
  }
  return c;
}

Tensor naive_tn(const Tensor& a, const Tensor& b) {
  const std::int64_t k = a.dim(0), m = a.dim(1), n = b.dim(1);
  Tensor c({m, n});
  for (std::int64_t kk = 0; kk < k; ++kk) {
    for (std::int64_t i = 0; i < m; ++i) {
      const float av = a.data()[kk * m + i];
      for (std::int64_t j = 0; j < n; ++j) {
        float& cj = c.data()[i * n + j];
        cj = std::fmaf(av, b.data()[kk * n + j], cj);
      }
    }
  }
  return c;
}

Tensor naive_nt(const Tensor& a, const Tensor& b) {
  const std::int64_t m = a.dim(0), k = a.dim(1), n = b.dim(0);
  // Historical matmul_nt order, established by bit-diffing the old binary:
  // the vectorized body rounds each product to float before the ascending
  // add, while the scalar epilogue (final k % 4 steps) was contracted into
  // fused multiply-adds.
  const std::int64_t body = k - (k % 4);
  Tensor c({m, n});
  for (std::int64_t i = 0; i < m; ++i) {
    for (std::int64_t j = 0; j < n; ++j) {
      float acc = 0.0f;
      for (std::int64_t kk = 0; kk < body; ++kk) {
        // volatile forces the product to round to float before the add,
        // regardless of the FP contraction mode this file compiles under.
        volatile float p = a.data()[i * k + kk] * b.data()[j * k + kk];
        acc += p;
      }
      for (std::int64_t kk = body; kk < k; ++kk) {
        acc = std::fmaf(a.data()[i * k + kk], b.data()[j * k + kk], acc);
      }
      c.data()[i * n + j] = acc;
    }
  }
  return c;
}

void expect_bitwise(const Tensor& got, const Tensor& want) {
  ASSERT_EQ(got.shape(), want.shape());
  for (std::int64_t i = 0; i < got.numel(); ++i) {
    ASSERT_EQ(got.data()[i], want.data()[i]) << "element " << i;
  }
}

struct GemmShape {
  std::int64_t m, k, n;
};

// Odd, non-square, tall-skinny, sub-tile and multi-block shapes: exercise
// partial MR/NR slivers, multiple KC blocks (k > 256), and multiple MC/NC
// panels.
const GemmShape kShapes[] = {{1, 1, 1},    {5, 3, 2},     {9, 17, 31},
                             {8, 16, 16},  {64, 64, 64},  {65, 257, 33},
                             {257, 63, 129}, {40, 1000, 3}, {3, 7, 1025},
                             // k % 4 == 2 and k % 8 in {4..6}: exercise the
                             // rounded 4-wide group + fused-tail split of the
                             // kNT contract. {256, 27, 8} is the ResNet stem
                             // conv's im2col shape.
                             {11, 14, 10}, {33, 12, 20}, {7, 6, 3},
                             {256, 27, 8}};

TEST(GemmCoreTest, BitwiseMatchesNaiveNN) {
  std::mt19937 rng(42);
  for (const GemmShape& s : kShapes) {
    Tensor a = random_tensor({s.m, s.k}, rng);
    Tensor b = random_tensor({s.k, s.n}, rng);
    expect_bitwise(matmul(a, b), naive_nn(a, b));
  }
}

TEST(GemmCoreTest, BitwiseMatchesNaiveTN) {
  std::mt19937 rng(43);
  for (const GemmShape& s : kShapes) {
    Tensor a = random_tensor({s.k, s.m}, rng);
    Tensor b = random_tensor({s.k, s.n}, rng);
    expect_bitwise(matmul_tn(a, b), naive_tn(a, b));
  }
}

TEST(GemmCoreTest, BitwiseMatchesNaiveNT) {
  std::mt19937 rng(44);
  for (const GemmShape& s : kShapes) {
    Tensor a = random_tensor({s.m, s.k}, rng);
    Tensor b = random_tensor({s.n, s.k}, rng);
    expect_bitwise(matmul_nt(a, b), naive_nt(a, b));
  }
}

TEST(GemmCoreTest, AccumulateContinuesExistingC) {
  std::mt19937 rng(45);
  Tensor a = random_tensor({37, 129}, rng);
  Tensor b = random_tensor({129, 45}, rng);
  Tensor base = random_tensor({37, 45}, rng);

  Tensor got = base;  // copy
  gemm(GemmLayout::kNN, 37, 45, 129, a.data(), b.data(), got.data(),
       /*accumulate=*/true);

  Tensor want = base;
  for (std::int64_t i = 0; i < 37; ++i) {
    for (std::int64_t kk = 0; kk < 129; ++kk) {
      const float av = a.data()[i * 129 + kk];
      for (std::int64_t j = 0; j < 45; ++j) {
        float& wj = want.data()[i * 45 + j];
        wj = std::fmaf(av, b.data()[kk * 45 + j], wj);
      }
    }
  }
  expect_bitwise(got, want);
}

// The old kernels skipped av == 0.0f, giving sparse inputs a different code
// path (and different branch behaviour) from dense ones. The blocked core
// must produce bitwise-identical results whether operands are dense or
// mostly zero — same path, no data-dependent branching.
TEST(GemmCoreTest, SparseAndDenseInputsAgreeWithReference) {
  std::mt19937 rng(46);
  Tensor a = random_tensor({57, 301}, rng);
  Tensor b = random_tensor({301, 43}, rng);
  // Zero out ~90% of A, including whole rows and whole k-slices.
  std::uniform_real_distribution<float> coin(0.0f, 1.0f);
  for (std::int64_t i = 0; i < a.numel(); ++i) {
    if (coin(rng) < 0.9f) a.data()[i] = 0.0f;
  }
  for (std::int64_t j = 0; j < 301; ++j) a.data()[3 * 301 + j] = 0.0f;
  expect_bitwise(matmul(a, b), naive_nn(a, b));
}

TEST(GemmCoreTest, FusedBiasEpilogueMatchesSeparatePass) {
  std::mt19937 rng(47);
  const std::int64_t m = 70, k = 300, n = 19;
  Tensor a = random_tensor({m, k}, rng);
  Tensor b = random_tensor({n, k}, rng);
  Tensor bias = random_tensor({n}, rng);

  Tensor fused({m, n});
  GemmEpilogue epi;
  epi.bias = bias.data();
  gemm(GemmLayout::kNT, m, n, k, a.data(), b.data(), fused.data(), false,
       &epi);

  Tensor want = naive_nt(a, b);
  for (std::int64_t i = 0; i < m; ++i) {
    for (std::int64_t j = 0; j < n; ++j) {
      want.data()[i * n + j] += bias.data()[j];
    }
  }
  expect_bitwise(fused, want);
}

TEST(GemmCoreTest, ScatterEpilogueTransposesToNCHW) {
  std::mt19937 rng(48);
  const std::int64_t batch = 3, spatial = 35, ch = 11, k = 60;
  const std::int64_t rows = batch * spatial;
  Tensor cols = random_tensor({rows, k}, rng);
  Tensor w = random_tensor({ch, k}, rng);
  Tensor bias = random_tensor({ch}, rng);

  Tensor scratch({rows, ch});
  Tensor fused({batch, ch, spatial});
  GemmEpilogue epi;
  epi.bias = bias.data();
  epi.out = fused.data();
  epi.scatter_spatial = spatial;
  gemm(GemmLayout::kNT, rows, ch, k, cols.data(), w.data(), scratch.data(),
       false, &epi);

  Tensor flat = naive_nt(cols, w);
  Tensor want({batch, ch, spatial});
  for (std::int64_t r = 0; r < rows; ++r) {
    const std::int64_t bidx = r / spatial, p = r % spatial;
    for (std::int64_t j = 0; j < ch; ++j) {
      want.data()[(bidx * ch + j) * spatial + p] =
          flat.data()[r * ch + j] + bias.data()[j];
    }
  }
  expect_bitwise(fused, want);
}

// Conv2D forward via the fused epilogue must match the explicit
// im2col -> matmul_nt -> bias -> transpose pipeline bitwise, across kernel=1,
// padding=0 and stride>1 geometries.
TEST(GemmCoreTest, ConvForwardMatchesExplicitPipeline) {
  struct ConvCase {
    std::int64_t in_c, h, w, out_c, kernel, stride, padding;
  };
  const ConvCase cases[] = {
      {3, 8, 8, 5, 3, 1, 1},  {4, 7, 9, 6, 1, 1, 0},
      {2, 11, 11, 3, 3, 2, 0}, {1, 5, 5, 8, 5, 1, 2},
      {6, 9, 9, 4, 3, 2, 1},
  };
  std::mt19937 rng(49);
  for (const ConvCase& cc : cases) {
    Conv2dGeometry geo;
    geo.in_channels = cc.in_c;
    geo.in_h = cc.h;
    geo.in_w = cc.w;
    geo.kernel = cc.kernel;
    geo.stride = cc.stride;
    geo.padding = cc.padding;
    const std::int64_t batch = 2;
    Tensor input = random_tensor({batch, cc.in_c, cc.h, cc.w}, rng);
    const std::int64_t patch = cc.in_c * cc.kernel * cc.kernel;
    Tensor w = random_tensor({cc.out_c, patch}, rng);
    Tensor bias = random_tensor({cc.out_c}, rng);
    const std::int64_t oh = geo.out_h(), ow = geo.out_w();
    const std::int64_t rows = batch * oh * ow;

    // Explicit pipeline.
    Tensor cols = im2col(input, geo);
    Tensor flat = matmul_nt(cols, w);
    Tensor want({batch, cc.out_c, oh, ow});
    for (std::int64_t r = 0; r < rows; ++r) {
      const std::int64_t bidx = r / (oh * ow), p = r % (oh * ow);
      for (std::int64_t j = 0; j < cc.out_c; ++j) {
        want.data()[(bidx * cc.out_c + j) * oh * ow + p] =
            flat.data()[r * cc.out_c + j] + bias.data()[j];
      }
    }

    // Fused epilogue path.
    Tensor scratch({rows, cc.out_c});
    Tensor got({batch, cc.out_c, oh, ow});
    GemmEpilogue epi;
    epi.bias = bias.data();
    epi.out = got.data();
    epi.scatter_spatial = oh * ow;
    gemm(GemmLayout::kNT, rows, cc.out_c, patch, cols.data(), w.data(),
         scratch.data(), false, &epi);
    expect_bitwise(got, want);
  }
}

TEST(GemmCoreTest, ParallelBitwiseIdenticalToSerial) {
  std::mt19937 rng(50);
  Tensor a = random_tensor({317, 129}, rng);
  Tensor b = random_tensor({129, 253}, rng);
  ASSERT_EQ(intra_op_threads(), 1);
  Tensor serial = matmul(a, b);
  set_intra_op_threads(4);
  Tensor parallel = matmul(a, b);
  set_intra_op_threads(1);
  expect_bitwise(parallel, serial);
}

TEST(GemmCoreTest, IntraOpThreadsClampsToOne) {
  set_intra_op_threads(0);
  EXPECT_EQ(intra_op_threads(), 1);
  set_intra_op_threads(-3);
  EXPECT_EQ(intra_op_threads(), 1);
}

// After the first forward/backward step, the conv layer's workspace arena is
// warm: subsequent steps may only allocate the Tensors they return (output,
// grad input; each Tensor is one shape + one data vector allocation).
TEST(WorkspaceArenaTest, ConvStepsAllocateOnlyReturnedTensors) {
  std::mt19937 mt(51);
  Rng rng(51);
  Conv2D conv(3, 8, /*kernel=*/3, /*stride=*/1, /*padding=*/1, rng);
  Tensor input = random_tensor({4, 3, 9, 9}, mt);

  // Warm-up step grows the arena to its steady-state size.
  Tensor out = conv.forward(input, /*training=*/true);
  Tensor grad_out = random_tensor(out.shape(), mt);
  Tensor grad_in = conv.backward(grad_out);

  // Measure how many allocations constructing the returned tensors costs.
  g_alloc_count.store(0);
  g_count_allocs.store(true);
  {
    Tensor probe_out(out.shape());
    Tensor probe_in(grad_in.shape());
  }
  g_count_allocs.store(false);
  const std::int64_t budget = g_alloc_count.load();

  g_alloc_count.store(0);
  g_count_allocs.store(true);
  Tensor out2 = conv.forward(input, /*training=*/true);
  g_count_allocs.store(false);
  const std::int64_t fwd_allocs = g_alloc_count.load();

  g_alloc_count.store(0);
  g_count_allocs.store(true);
  Tensor grad_in2 = conv.backward(grad_out);
  g_count_allocs.store(false);
  const std::int64_t bwd_allocs = g_alloc_count.load();

  EXPECT_LE(fwd_allocs + bwd_allocs, budget)
      << "conv steady-state steps must not heap-allocate beyond the "
         "returned output tensors (fwd=" << fwd_allocs
      << ", bwd=" << bwd_allocs << ", budget=" << budget << ")";
}

}  // namespace
}  // namespace edgetune
