// Tests for the reliability layer (DESIGN §5.4): deterministic fault
// injection, the retry/backoff/deadline policy, first-class failed trials in
// the tuning report, the failure budget, and best-effort cache persistence.
// The TSan-covered concurrent cases (leader-fails-joiners-retry, parallel ==
// serial under injection) live in concurrency_test.cpp.
#include <gtest/gtest.h>

#include <cmath>
#include <cstdio>
#include <fstream>
#include <limits>
#include <string>

#include "common/fault.hpp"
#include "common/retry.hpp"
#include "tuning/historical_cache.hpp"
#include "tuning/model_server.hpp"
#include "tuning/report_io.hpp"

namespace edgetune {
namespace {

// --- FaultSpec / plan parsing ----------------------------------------------

TEST(FaultSpecTest, ParsesRateSpec) {
  Result<FaultSpec> spec =
      parse_fault_spec("site=trial.train,rate=0.1,code=unavailable");
  ASSERT_TRUE(spec.ok()) << spec.status().to_string();
  EXPECT_EQ(spec.value().site, "trial.train");
  EXPECT_DOUBLE_EQ(spec.value().rate, 0.1);
  EXPECT_EQ(spec.value().fail_first, 0);
  EXPECT_EQ(spec.value().code, StatusCode::kUnavailable);
}

TEST(FaultSpecTest, ParsesFailFirstSpecWithSpaces) {
  Result<FaultSpec> spec = parse_fault_spec(
      " site = inference.measure , fail_first = 2 , code = deadline_exceeded ");
  ASSERT_TRUE(spec.ok()) << spec.status().to_string();
  EXPECT_EQ(spec.value().site, "inference.measure");
  EXPECT_EQ(spec.value().fail_first, 2);
  EXPECT_EQ(spec.value().code, StatusCode::kDeadlineExceeded);
}

TEST(FaultSpecTest, RejectsMalformedSpecs) {
  EXPECT_FALSE(parse_fault_spec("rate=0.5").ok());             // missing site
  EXPECT_FALSE(parse_fault_spec("site=x").ok());               // no rate/first
  EXPECT_FALSE(parse_fault_spec("site=x,rate=1.5").ok());      // out of range
  EXPECT_FALSE(parse_fault_spec("site=x,rate=-0.1").ok());     // out of range
  EXPECT_FALSE(parse_fault_spec("site=x,rate=abc").ok());      // not a number
  EXPECT_FALSE(parse_fault_spec("site=x,fail_first=-1").ok());
  EXPECT_FALSE(parse_fault_spec("site=x,rate=0.5,color=red").ok());
  EXPECT_FALSE(parse_fault_spec("site=x,rate").ok());          // not key=value
  EXPECT_FALSE(parse_fault_spec("site=x,rate=0.5,code=ok").ok());
  EXPECT_FALSE(parse_fault_spec("site=x,rate=0.5,code=bogus").ok());
}

TEST(FaultSpecTest, ParsesSemicolonSeparatedPlan) {
  Result<std::vector<FaultSpec>> plan = parse_fault_plan(
      "site=trial.train,rate=0.2;site=cache.persist,fail_first=1,code=io");
  ASSERT_TRUE(plan.ok()) << plan.status().to_string();
  ASSERT_EQ(plan.value().size(), 2u);
  EXPECT_EQ(plan.value()[0].site, "trial.train");
  EXPECT_EQ(plan.value()[1].code, StatusCode::kIo);

  Result<std::vector<FaultSpec>> empty = parse_fault_plan("");
  ASSERT_TRUE(empty.ok());
  EXPECT_TRUE(empty.value().empty());

  EXPECT_FALSE(parse_fault_plan("site=a,rate=0.1;bogus").ok());
}

TEST(FaultSpecTest, RejectsDuplicateSiteSpecs) {
  // Two specs for one site used to both load; which one fired depended
  // silently on plan order. A plan now holds at most one spec per site.
  Result<std::vector<FaultSpec>> plan = parse_fault_plan(
      "site=trial.train,rate=0.2;site=trial.train,fail_first=1");
  ASSERT_FALSE(plan.ok());
  EXPECT_EQ(plan.status().code(), StatusCode::kInvalidArgument);
  EXPECT_NE(plan.status().message().find("duplicate fault spec for site"),
            std::string::npos)
      << plan.status().message();
  EXPECT_NE(plan.status().message().find("trial.train"), std::string::npos)
      << plan.status().message();

  // Same site across DIFFERENT fault domains is fine — only within one plan.
  Result<std::vector<FaultSpec>> distinct = parse_fault_plan(
      "site=trial.train,rate=0.2;site=worker.drop,fail_first=1");
  EXPECT_TRUE(distinct.ok()) << distinct.status().to_string();
}

TEST(FaultSpecTest, StatusCodeNamesRoundTrip) {
  for (const char* name :
       {"invalid_argument", "not_found", "out_of_range", "failed_precondition",
        "internal", "unavailable", "cancelled", "deadline_exceeded",
        "already_exists", "io"}) {
    Result<StatusCode> code = status_code_from_name(name);
    ASSERT_TRUE(code.ok()) << name;
  }
  EXPECT_FALSE(status_code_from_name("ok").ok());  // success is not a fault
}

// --- FaultInjector ----------------------------------------------------------

std::vector<FaultSpec> one_site(const std::string& site, double rate,
                                int fail_first = 0) {
  FaultSpec spec;
  spec.site = site;
  spec.rate = rate;
  spec.fail_first = fail_first;
  return {spec};
}

TEST(FaultInjectorTest, DisabledInjectorNeverFires) {
  FaultInjector off;
  EXPECT_FALSE(off.enabled());
  EXPECT_TRUE(off.fire(fault_site::kTrialTrain, "any").is_ok());
  EXPECT_EQ(off.injected(fault_site::kTrialTrain), 0);
}

TEST(FaultInjectorTest, DecisionsArePureInSeedSiteKeyAttempt) {
  FaultInjector a(42, one_site(fault_site::kTrialTrain, 0.5));
  FaultInjector b(42, one_site(fault_site::kTrialTrain, 0.5));
  for (int key = 0; key < 64; ++key) {
    for (int attempt = 0; attempt < 3; ++attempt) {
      const std::string k = "trial-" + std::to_string(key);
      EXPECT_EQ(a.fire(fault_site::kTrialTrain, k, attempt).is_ok(),
                b.fire(fault_site::kTrialTrain, k, attempt).is_ok())
          << k << " attempt " << attempt;
    }
  }
  // And repeated fire()s of the same decision agree with themselves: no
  // hidden ordering state.
  const bool first = a.fire(fault_site::kTrialTrain, "probe").is_ok();
  for (int i = 0; i < 5; ++i) {
    EXPECT_EQ(a.fire(fault_site::kTrialTrain, "probe").is_ok(), first);
  }
}

TEST(FaultInjectorTest, RateBoundsAndCounter) {
  FaultInjector always(7, one_site("s", 1.0));
  FaultInjector never(7, one_site("s", 0.0, /*fail_first=*/0));
  int fired = 0;
  for (int i = 0; i < 50; ++i) {
    const std::string key = "k" + std::to_string(i);
    Status s = always.fire("s", key);
    EXPECT_FALSE(s.is_ok());
    if (!s.is_ok()) ++fired;
    EXPECT_TRUE(never.fire("s", key).is_ok());
  }
  EXPECT_EQ(always.injected("s"), fired);
  EXPECT_EQ(never.injected("s"), 0);
  // A mid-rate plan fires sometimes, not always — sanity, not statistics.
  FaultInjector half(7, one_site("s", 0.5));
  int hits = 0;
  for (int i = 0; i < 200; ++i) {
    if (!half.fire("s", "k" + std::to_string(i)).is_ok()) ++hits;
  }
  EXPECT_GT(hits, 0);
  EXPECT_LT(hits, 200);
}

TEST(FaultInjectorTest, FailFirstFailsLeadingAttemptsThenSucceeds) {
  FaultInjector inj(3, one_site("s", 0, /*fail_first=*/2));
  Status a0 = inj.fire("s", "key", 0);
  Status a1 = inj.fire("s", "key", 1);
  EXPECT_EQ(a0.code(), StatusCode::kUnavailable);  // default injected code
  EXPECT_FALSE(a1.is_ok());
  EXPECT_TRUE(inj.fire("s", "key", 2).is_ok());
  EXPECT_TRUE(inj.fire("s", "key", 3).is_ok());
  // Unknown sites are never in the plan: no-ops.
  EXPECT_TRUE(inj.fire("other.site", "key", 0).is_ok());
  EXPECT_EQ(inj.injected("other.site"), 0);
}

// --- Retry policy -----------------------------------------------------------

TEST(RetryTest, RetryableCodeTaxonomy) {
  EXPECT_TRUE(retryable_code(StatusCode::kUnavailable));
  EXPECT_TRUE(retryable_code(StatusCode::kDeadlineExceeded));
  EXPECT_FALSE(retryable_code(StatusCode::kOk));
  EXPECT_FALSE(retryable_code(StatusCode::kInvalidArgument));
  EXPECT_FALSE(retryable_code(StatusCode::kInternal));
  EXPECT_FALSE(retryable_code(StatusCode::kIo));
  EXPECT_FALSE(retryable_code(StatusCode::kNotFound));
  EXPECT_FALSE(retryable_code(StatusCode::kCancelled));
}

TEST(RetryTest, BackoffScheduleIsDeterministicExponentialAndCapped) {
  RetryPolicy policy;
  policy.initial_backoff_s = 0.5;
  policy.backoff_multiplier = 2.0;
  policy.max_backoff_s = 4.0;
  policy.jitter = 0.1;
  for (int retry = 1; retry <= 8; ++retry) {
    const double a = retry_backoff_s(policy, 11, retry);
    const double b = retry_backoff_s(policy, 11, retry);
    EXPECT_DOUBLE_EQ(a, b) << "same (policy, seed, retry) must charge the "
                              "same simulated backoff";
    const double base =
        std::min(policy.max_backoff_s, 0.5 * std::pow(2.0, retry - 1));
    EXPECT_GE(a, base * (1 - policy.jitter) - 1e-12) << "retry " << retry;
    EXPECT_LE(a, base * (1 + policy.jitter) + 1e-12) << "retry " << retry;
  }
  // Different seeds jitter differently (almost surely).
  EXPECT_NE(retry_backoff_s(policy, 1, 1), retry_backoff_s(policy, 2, 1));
  // Zero jitter is the exact schedule.
  policy.jitter = 0;
  EXPECT_DOUBLE_EQ(retry_backoff_s(policy, 9, 1), 0.5);
  EXPECT_DOUBLE_EQ(retry_backoff_s(policy, 9, 2), 1.0);
  EXPECT_DOUBLE_EQ(retry_backoff_s(policy, 9, 3), 2.0);
  EXPECT_DOUBLE_EQ(retry_backoff_s(policy, 9, 5), 4.0);  // capped
}

TEST(RetryTest, RetryCallSucceedsFirstTryWithoutBackoff) {
  RetryPolicy policy;
  policy.max_attempts = 3;
  RetryStats stats;
  Result<int> r = retry_call<int>(
      policy, 1, [](int) -> Result<int> { return 42; }, &stats);
  ASSERT_TRUE(r.ok());
  EXPECT_EQ(r.value(), 42);
  EXPECT_EQ(stats.attempts, 1);
  EXPECT_DOUBLE_EQ(stats.backoff_s, 0);
  EXPECT_TRUE(stats.first_error.is_ok());
}

TEST(RetryTest, RetryCallRecoversFromTransientFailures) {
  RetryPolicy policy;
  policy.max_attempts = 3;
  policy.jitter = 0;
  RetryStats stats;
  Result<int> r = retry_call<int>(
      policy, 1,
      [](int attempt) -> Result<int> {
        if (attempt < 2) return Status::unavailable("transient");
        return attempt;
      },
      &stats);
  ASSERT_TRUE(r.ok());
  EXPECT_EQ(r.value(), 2);
  EXPECT_EQ(stats.attempts, 3);
  EXPECT_DOUBLE_EQ(stats.backoff_s, 0.5 + 1.0);  // two retries, exact schedule
  EXPECT_EQ(stats.first_error.code(), StatusCode::kUnavailable);
}

TEST(RetryTest, RetryCallFailsFastOnPermanentCodes) {
  RetryPolicy policy;
  policy.max_attempts = 5;
  RetryStats stats;
  int calls = 0;
  Result<int> r = retry_call<int>(
      policy, 1,
      [&](int) -> Result<int> {
        ++calls;
        return Status::internal("bug, not weather");
      },
      &stats);
  EXPECT_FALSE(r.ok());
  EXPECT_EQ(r.status().code(), StatusCode::kInternal);
  EXPECT_EQ(calls, 1);
  EXPECT_EQ(stats.attempts, 1);
  EXPECT_DOUBLE_EQ(stats.backoff_s, 0);
}

TEST(RetryTest, RetryCallExhaustsAttempts) {
  RetryPolicy policy;
  policy.max_attempts = 3;
  RetryStats stats;
  int calls = 0;
  Result<int> r = retry_call<int>(
      policy, 1,
      [&](int) -> Result<int> {
        ++calls;
        return Status::unavailable("still down");
      },
      &stats);
  EXPECT_FALSE(r.ok());
  EXPECT_EQ(calls, 3);
  EXPECT_EQ(stats.attempts, 3);
  EXPECT_GT(stats.backoff_s, 0);  // charged even though the call failed
}

// --- End-to-end: failed trials in the report -------------------------------

EdgeTuneOptions faulty_options(const std::string& plan) {
  EdgeTuneOptions options;
  options.workload = WorkloadKind::kNlp;
  options.hyperband = {1, 4, 2, 1};
  options.runner.proxy_samples = 240;
  options.inference.algorithm = "grid";
  options.seed = 5;
  Result<std::vector<FaultSpec>> faults = parse_fault_plan(plan);
  EXPECT_TRUE(faults.ok()) << faults.status().to_string();
  options.faults = faults.value();
  return options;
}

TEST(FaultToleranceTest, PermanentFaultsBecomeFirstClassFailedTrials) {
  // internal is non-retryable: every injected trial fails on attempt 0 and
  // must appear in the report with its status, not vanish or kill the run
  // (the default failure budget degrades gracefully).
  EdgeTuneOptions options =
      faulty_options("site=trial.train,rate=0.3,code=internal");
  options.trial_retry.max_attempts = 3;  // irrelevant for non-retryable codes
  Result<TuningReport> report = EdgeTune(options).run();
  ASSERT_TRUE(report.ok()) << report.status().to_string();
  const TuningReport& r = report.value();
  EXPECT_GT(r.failed_trials, 0);
  EXPECT_EQ(r.retried_trials, 0);
  EXPECT_EQ(r.first_error.code(), StatusCode::kInternal);
  std::int64_t failed_seen = 0;
  for (const TrialLog& t : r.trials) {
    if (!t.failed()) continue;
    ++failed_seen;
    EXPECT_EQ(t.status.code(), StatusCode::kInternal);
    EXPECT_EQ(t.attempts, 1);
    EXPECT_TRUE(std::isinf(t.objective));
  }
  EXPECT_EQ(failed_seen, r.failed_trials);
  // The winner is a real (non-failed) trial.
  EXPECT_TRUE(std::isfinite(r.best_objective));
}

TEST(FaultToleranceTest, TransientFaultsAreRetriedAndCharged) {
  EdgeTuneOptions options =
      faulty_options("site=trial.train,rate=0.3,code=unavailable");
  options.trial_retry.max_attempts = 4;
  Result<TuningReport> report = EdgeTune(options).run();
  ASSERT_TRUE(report.ok()) << report.status().to_string();
  const TuningReport& r = report.value();
  EXPECT_GT(r.retried_trials, 0);
  EXPECT_GT(r.retry_backoff_s, 0);
  double backoff_sum = 0;
  for (const TrialLog& t : r.trials) {
    backoff_sum += t.retry_backoff_s;
    if (t.attempts > 1 && !t.failed()) {
      EXPECT_GT(t.retry_backoff_s, 0);
      EXPECT_GT(t.accuracy, 0);  // recovered: a real result
    }
  }
  EXPECT_DOUBLE_EQ(backoff_sum, r.retry_backoff_s);
}

TEST(FaultToleranceTest, ZeroFailureBudgetAbortsWithAggregatedError) {
  EdgeTuneOptions options =
      faulty_options("site=trial.train,rate=0.3,code=internal");
  options.max_trial_failure_fraction = 0;
  Result<TuningReport> report = EdgeTune(options).run();
  ASSERT_FALSE(report.ok());
  EXPECT_EQ(report.status().code(), StatusCode::kInternal);
  EXPECT_NE(report.status().message().find("trials failed"),
            std::string::npos)
      << report.status().to_string();
}

TEST(FaultToleranceTest, CleanRunReportsNoReliabilityFields) {
  // The acceptance criterion behind conditional serialization: a clean run's
  // JSON must not mention the reliability fields at all (byte-identity with
  // pre-reliability reports).
  EdgeTuneOptions options = faulty_options("");
  Result<TuningReport> report = EdgeTune(options).run();
  ASSERT_TRUE(report.ok()) << report.status().to_string();
  EXPECT_EQ(report.value().failed_trials, 0);
  EXPECT_EQ(report.value().retried_trials, 0);
  const std::string json = report_to_json(report.value()).dump_pretty();
  EXPECT_EQ(json.find("failed_trials"), std::string::npos);
  EXPECT_EQ(json.find("retried_trials"), std::string::npos);
  EXPECT_EQ(json.find("retry_backoff_s"), std::string::npos);
  EXPECT_EQ(json.find("first_error"), std::string::npos);
  EXPECT_EQ(json.find("attempts"), std::string::npos);
  EXPECT_EQ(json.find("\"status\""), std::string::npos);
}

TEST(FaultToleranceTest, ReportReliabilityFieldsRoundTripThroughJson) {
  TuningReport report;
  report.system = "edgetune";
  report.failed_trials = 2;
  report.retried_trials = 3;
  report.retry_backoff_s = 1.75;
  report.first_error = Status::unavailable("injected fault at trial.train");
  TrialLog failed;
  failed.id = 0;
  failed.status = Status::deadline_exceeded("too slow");
  failed.attempts = 4;
  failed.retry_backoff_s = 1.25;
  failed.objective = std::numeric_limits<double>::infinity();
  report.trials.push_back(failed);

  Result<TuningReport> parsed =
      report_from_json(report_to_json(report));
  ASSERT_TRUE(parsed.ok()) << parsed.status().to_string();
  EXPECT_EQ(parsed.value().failed_trials, 2);
  EXPECT_EQ(parsed.value().retried_trials, 3);
  EXPECT_DOUBLE_EQ(parsed.value().retry_backoff_s, 1.75);
  EXPECT_EQ(parsed.value().first_error.code(), StatusCode::kUnavailable);
  EXPECT_EQ(parsed.value().first_error.message(),
            "injected fault at trial.train");
  ASSERT_EQ(parsed.value().trials.size(), 1u);
  const TrialLog& t = parsed.value().trials[0];
  EXPECT_TRUE(t.failed());
  EXPECT_EQ(t.status.code(), StatusCode::kDeadlineExceeded);
  EXPECT_EQ(t.status.message(), "too slow");
  EXPECT_EQ(t.attempts, 4);
  EXPECT_DOUBLE_EQ(t.retry_backoff_s, 1.25);
}

// --- Cache: best-effort persistence and corrupt-file quarantine -------------

InferenceRecommendation sample_rec() {
  InferenceRecommendation rec;
  rec.config["inf_batch"] = 8;
  rec.latency_s = 0.02;
  rec.throughput_sps = 400;
  return rec;
}

TEST(CachePersistenceTest, PersistFailureDegradesToMemoryOnly) {
  const std::string path = ::testing::TempDir() + "/degrade_cache.json";
  std::remove(path.c_str());
  {
    HistoricalCache cache(path, /*flush_every=*/1);
    FaultInjector inj(5, one_site(fault_site::kCachePersist, 1.0));
    cache.set_fault_injector(inj);
    // Every flush fails, yet store() stays OK and memory serves lookups.
    for (int i = 0; i < 3; ++i) {
      EXPECT_TRUE(cache
                      .store("arch" + std::to_string(i), "rpi3b",
                             MetricOfInterest::kEnergy, sample_rec())
                      .is_ok());
    }
    EXPECT_TRUE(
        cache.lookup("arch0", "rpi3b", MetricOfInterest::kEnergy).has_value());
    EXPECT_GE(cache.persist_failures(), 3u);
    // save() is the explicit-durability API: it DOES report the failure.
    EXPECT_FALSE(cache.save().is_ok());
  }
  // Nothing ever reached disk.
  std::ifstream in(path);
  EXPECT_FALSE(in.good());
}

TEST(CachePersistenceTest, CorruptFileIsQuarantinedNotClobbered) {
  const std::string path = ::testing::TempDir() + "/corrupt_cache.json";
  const std::string quarantine = path + ".corrupt";
  std::remove(quarantine.c_str());
  {
    std::ofstream out(path, std::ios::trunc);
    out << "{ this is not json";
  }
  {
    HistoricalCache cache(path);
    EXPECT_EQ(cache.size(), 0u);  // starts empty...
    // ...and the evidence was moved aside, not silently overwritten.
    std::ifstream moved(quarantine);
    ASSERT_TRUE(moved.good());
    std::string contents;
    std::getline(moved, contents);
    EXPECT_EQ(contents, "{ this is not json");
    EXPECT_TRUE(cache
                    .store("archQ", "rpi3b", MetricOfInterest::kEnergy,
                           sample_rec())
                    .is_ok());
    EXPECT_TRUE(cache.save().is_ok());
  }
  // The next generation loads the fresh, valid database.
  HistoricalCache reloaded(path);
  EXPECT_EQ(reloaded.size(), 1u);
  EXPECT_TRUE(reloaded.lookup("archQ", "rpi3b", MetricOfInterest::kEnergy)
                  .has_value());
  std::remove(path.c_str());
  std::remove(quarantine.c_str());
}

}  // namespace
}  // namespace edgetune
