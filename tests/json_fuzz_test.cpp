// Property test: randomly generated JSON values must survive
// dump -> parse -> dump round trips bit-identically, across many seeds.
#include <gtest/gtest.h>

#include "common/json.hpp"
#include "common/rng.hpp"

namespace edgetune {
namespace {

/// Generates a random JSON value of bounded depth.
Json random_json(Rng& rng, int depth) {
  const int kind = depth <= 0 ? static_cast<int>(rng.bounded(4))
                              : static_cast<int>(rng.bounded(6));
  switch (kind) {
    case 0:
      return Json(nullptr);
    case 1:
      return Json(rng.bernoulli(0.5));
    case 2: {
      // Mix integers, negatives, and fractions.
      switch (rng.bounded(3)) {
        case 0:
          return Json(rng.uniform_int(-1000000, 1000000));
        case 1:
          return Json(rng.uniform(-1e6, 1e6));
        default:
          return Json(rng.uniform(-1.0, 1.0) * 1e-6);
      }
    }
    case 3: {
      // Strings with escapes, control chars, and UTF-8 bytes.
      static const char* pool =
          "abcXYZ 0123\"\\\n\t\r{}[],:!@#$%";
      std::string s;
      const auto len = rng.bounded(24);
      for (std::uint64_t i = 0; i < len; ++i) {
        s += pool[rng.bounded(26)];
      }
      return Json(std::move(s));
    }
    case 4: {
      JsonArray arr;
      const auto len = rng.bounded(5);
      for (std::uint64_t i = 0; i < len; ++i) {
        arr.push_back(random_json(rng, depth - 1));
      }
      return Json(std::move(arr));
    }
    default: {
      JsonObject obj;
      const auto len = rng.bounded(5);
      for (std::uint64_t i = 0; i < len; ++i) {
        obj.emplace("key_" + std::to_string(rng.bounded(100)),
                    random_json(rng, depth - 1));
      }
      return Json(std::move(obj));
    }
  }
}

class JsonFuzzTest : public ::testing::TestWithParam<int> {};

TEST_P(JsonFuzzTest, DumpParseDumpIsStable) {
  Rng rng(static_cast<std::uint64_t>(GetParam()) * 7919 + 13);
  for (int i = 0; i < 50; ++i) {
    Json original = random_json(rng, 4);
    const std::string first = original.dump();
    Result<Json> parsed = Json::parse(first);
    ASSERT_TRUE(parsed.ok()) << first << " :: "
                             << parsed.status().to_string();
    EXPECT_EQ(parsed.value().dump(), first);
    // Pretty output parses back to the same value too.
    Result<Json> pretty = Json::parse(original.dump_pretty());
    ASSERT_TRUE(pretty.ok());
    EXPECT_EQ(pretty.value().dump(), first);
  }
}

INSTANTIATE_TEST_SUITE_P(Seeds, JsonFuzzTest, ::testing::Range(0, 8));

TEST(JsonFuzzTest, MutatedInputsNeverCrash) {
  // Parse random mutations of a valid document: outcomes may be ok or
  // error, but must never crash or hang.
  Rng rng(4242);
  const std::string base =
      R"({"a": [1, 2.5, null], "b": {"c": "text", "d": true}})";
  for (int i = 0; i < 500; ++i) {
    std::string mutated = base;
    const auto edits = 1 + rng.bounded(4);
    for (std::uint64_t e = 0; e < edits; ++e) {
      const auto pos = rng.bounded(mutated.size());
      switch (rng.bounded(3)) {
        case 0:
          mutated[pos] = static_cast<char>(32 + rng.bounded(95));
          break;
        case 1:
          mutated.erase(pos, 1);
          break;
        default:
          mutated.insert(pos, 1, static_cast<char>(32 + rng.bounded(95)));
      }
    }
    Result<Json> parsed = Json::parse(mutated);
    if (parsed.ok()) {
      // Whatever parsed must round-trip.
      Result<Json> again = Json::parse(parsed.value().dump());
      EXPECT_TRUE(again.ok());
    }
  }
}

}  // namespace
}  // namespace edgetune
