// Tests for parameter spaces and search algorithms (grid, random,
// HyperBand, BOHB, sequential TPE).
#include <gtest/gtest.h>

#include <cmath>
#include <map>

#include "search/algorithms.hpp"

namespace edgetune {
namespace {

SearchSpace quadratic_space() {
  SearchSpace space;
  space.add(ParamSpec::real("x", -2, 2));
  space.add(ParamSpec::real("y", -2, 2));
  return space;
}

/// Smooth objective with minimum at (1, -0.5).
double quadratic(const Config& config, double /*resource*/) {
  const double x = config.at("x"), y = config.at("y");
  return (x - 1) * (x - 1) + (y + 0.5) * (y + 0.5);
}

TEST(ParamSpecTest, CategoricalSampleAndClip) {
  ParamSpec spec = ParamSpec::categorical("layers", {18, 34, 50});
  Rng rng(1);
  for (int i = 0; i < 50; ++i) {
    EXPECT_TRUE(spec.contains(spec.sample(rng)));
  }
  EXPECT_DOUBLE_EQ(spec.clip(30), 34);
  EXPECT_DOUBLE_EQ(spec.clip(100), 50);
  EXPECT_FALSE(spec.contains(20));
}

TEST(ParamSpecTest, IntegerSampleRoundsAndBounds) {
  ParamSpec spec = ParamSpec::integer("cores", 1, 4);
  Rng rng(2);
  for (int i = 0; i < 100; ++i) {
    const double v = spec.sample(rng);
    EXPECT_TRUE(spec.contains(v)) << v;
    EXPECT_DOUBLE_EQ(v, std::round(v));
  }
  EXPECT_DOUBLE_EQ(spec.clip(2.4), 2);
  EXPECT_DOUBLE_EQ(spec.clip(9), 4);
}

TEST(ParamSpecTest, LogScaleSamplesSpreadAcrossDecades) {
  ParamSpec spec = ParamSpec::real("lr", 1e-4, 1.0, /*log_scale=*/true);
  Rng rng(3);
  int low = 0;
  for (int i = 0; i < 1000; ++i) {
    if (spec.sample(rng) < 1e-2) ++low;  // half the log-range
  }
  EXPECT_NEAR(low / 1000.0, 0.5, 0.07);
}

TEST(ParamSpecTest, GridShapes) {
  EXPECT_EQ(ParamSpec::categorical("c", {1, 2, 3}).grid(10).size(), 3u);
  EXPECT_EQ(ParamSpec::integer("i", 1, 3).grid(10).size(), 3u);
  EXPECT_EQ(ParamSpec::integer("i", 1, 100).grid(5).size(), 5u);
  auto grid = ParamSpec::real("r", 0, 1).grid(5);
  EXPECT_EQ(grid.size(), 5u);
  EXPECT_DOUBLE_EQ(grid.front(), 0);
  EXPECT_DOUBLE_EQ(grid.back(), 1);
}

TEST(SearchSpaceTest, SampleValidates) {
  SearchSpace space = quadratic_space();
  Rng rng(4);
  for (int i = 0; i < 20; ++i) {
    EXPECT_TRUE(space.validate(space.sample(rng)).is_ok());
  }
}

TEST(SearchSpaceTest, ValidateCatchesMissingAndOutOfRange) {
  SearchSpace space = quadratic_space();
  EXPECT_EQ(space.validate({{"x", 0.0}}).code(),
            StatusCode::kInvalidArgument);
  EXPECT_EQ(space.validate({{"x", 0.0}, {"y", 5.0}}).code(),
            StatusCode::kOutOfRange);
}

TEST(SearchSpaceTest, GridIsCartesianProduct) {
  SearchSpace space;
  space.add(ParamSpec::categorical("a", {1, 2}));
  space.add(ParamSpec::categorical("b", {10, 20, 30}));
  EXPECT_EQ(space.grid(5).size(), 6u);
}

TEST(SearchSpaceTest, FindByName) {
  SearchSpace space = quadratic_space();
  EXPECT_NE(space.find("x"), nullptr);
  EXPECT_EQ(space.find("z"), nullptr);
}

TEST(ConfigTest, HashStableAndDiscriminating) {
  Config a = {{"x", 1.0}, {"y", 2.0}};
  Config b = {{"y", 2.0}, {"x", 1.0}};  // same content, insertion order moot
  Config c = {{"x", 1.0}, {"y", 2.1}};
  EXPECT_EQ(config_hash(a), config_hash(b));
  EXPECT_NE(config_hash(a), config_hash(c));
  EXPECT_NE(config_to_string(a).find("x=1.0000"), std::string::npos);
}

TEST(GridSearchTest, FindsGridOptimum) {
  GridSearch search(quadratic_space(), /*max_resource=*/1, 5);
  Rng rng(5);
  SearchResult result = search.optimize(quadratic, rng);
  EXPECT_EQ(result.trials.size(), 25u);
  EXPECT_NEAR(result.best_config.at("x"), 1.0, 1e-9);   // on-grid point
  EXPECT_NEAR(result.best_config.at("y"), -1.0, 1e-9);  // closest grid value
}

TEST(RandomSearchTest, ImprovesWithMoreTrials) {
  Rng rng(6);
  SearchResult small =
      RandomSearch(quadratic_space(), 1, 4).optimize(quadratic, rng);
  Rng rng2(6);
  SearchResult large =
      RandomSearch(quadratic_space(), 1, 128).optimize(quadratic, rng2);
  EXPECT_LE(large.best_objective, small.best_objective);
  EXPECT_LT(large.best_objective, 0.2);
}

TEST(HyperBandTest, RungResourceAllocation) {
  // min 1, max 16, eta 2 -> bracket 0 runs rungs at 1,2,4,8,16 with
  // 16,8,4,2,1 survivors (the paper's §2.2 example).
  HyperBandOptions options{1, 16, 2, 1};  // first bracket only
  auto hb = make_hyperband(quadratic_space(), options);
  std::map<double, int> evals_per_resource;
  const EvalFn eval = [&](const Config& config, double resource) {
    ++evals_per_resource[resource];
    return quadratic(config, resource);
  };
  Rng rng(7);
  hb->optimize(eval, rng);
  EXPECT_EQ(evals_per_resource[1], 16);
  EXPECT_EQ(evals_per_resource[2], 8);
  EXPECT_EQ(evals_per_resource[4], 4);
  EXPECT_EQ(evals_per_resource[8], 2);
  EXPECT_EQ(evals_per_resource[16], 1);
}

TEST(HyperBandTest, SurvivorsAreTheBest) {
  // With a resource-independent objective, the config evaluated at max
  // resource must be the bracket's best-at-any-rung.
  HyperBandOptions options{1, 4, 2, 1};
  auto hb = make_hyperband(quadratic_space(), options);
  double best_seen = std::numeric_limits<double>::infinity();
  double final_value = -1;
  const EvalFn eval = [&](const Config& config, double resource) {
    const double v = quadratic(config, resource);
    best_seen = std::min(best_seen, v);
    if (resource == 4) final_value = v;
    return v;
  };
  Rng rng(8);
  hb->optimize(eval, rng);
  EXPECT_DOUBLE_EQ(final_value, best_seen);
}

TEST(BohbTest, BeatsRandomOnStructuredObjective) {
  // Same evaluation count; BOHB's TPE should find a lower optimum on a
  // smooth objective. Compare best-of across matched budgets.
  HyperBandOptions options{1, 8, 2, 0};
  Rng rng_b(9);
  auto bohb = make_bohb(quadratic_space(), options);
  SearchResult bohb_result = bohb->optimize(quadratic, rng_b);

  Rng rng_r(9);
  RandomSearch random(quadratic_space(), 8,
                      static_cast<int>(bohb_result.trials.size()));
  SearchResult random_result = random.optimize(quadratic, rng_r);

  EXPECT_LE(bohb_result.best_objective,
            random_result.best_objective * 1.5 + 0.05);
  EXPECT_LT(bohb_result.best_objective, 0.6);
}

TEST(TpeSearchTest, ConvergesOnQuadratic) {
  TpeSearch search(quadratic_space(), 1, 48);
  Rng rng(10);
  SearchResult result = search.optimize(quadratic, rng);
  EXPECT_LT(result.best_objective, 0.15);
  EXPECT_EQ(result.trials.size(), 48u);
}

TEST(TpeSuggestorTest, SuggestionsStayInDomain) {
  SearchSpace space;
  space.add(ParamSpec::categorical("c", {1, 2, 3}));
  space.add(ParamSpec::integer("i", 1, 8, true));
  space.add(ParamSpec::real("r", -1, 1));
  TpeSuggestor suggestor(space);
  Rng rng(11);
  // Feed observations, then sample.
  for (int i = 0; i < 30; ++i) {
    Config config = space.sample(rng);
    suggestor.observe({config, 1.0, rng.uniform()});
  }
  for (int i = 0; i < 30; ++i) {
    Config config = suggestor.suggest(rng);
    EXPECT_TRUE(space.validate(config).is_ok())
        << config_to_string(config);
  }
}

TEST(TpeBatchTest, BatchSizeOneMatchesHistoricalSerialLoop) {
  // The historical serial TPE loop, written out longhand against the
  // suggestor: TpeSearch with batch size 1 must reproduce it bit-for-bit —
  // the same RNG draws, so the exact same configs in the same order.
  SearchSpace space = quadratic_space();
  Rng rng_manual(21);
  TpeSuggestor suggestor(space);
  std::vector<Config> manual;
  for (int i = 0; i < 24; ++i) {
    Config config = suggestor.suggest(rng_manual);
    const double objective = quadratic(config, 1);
    suggestor.observe({config, 1.0, objective});
    manual.push_back(std::move(config));
  }

  Rng rng_batched(21);
  TpeSearch search(space, 1, 24, {}, /*batch_size=*/1);
  SearchResult result = search.optimize(quadratic, rng_batched);
  ASSERT_EQ(result.trials.size(), manual.size());
  for (std::size_t i = 0; i < manual.size(); ++i) {
    EXPECT_EQ(result.trials[i].config, manual[i]) << "trial " << i;
  }
}

TEST(TpeBatchTest, ConstantLiarRegistersAndRetractsLies) {
  SearchSpace space = quadratic_space();
  TpeSuggestor suggestor(space);
  Rng rng(22);
  for (int i = 0; i < 20; ++i) {
    Config config = space.sample(rng);
    suggestor.observe({config, 1.0, quadratic(config, 1)});
  }
  ASSERT_EQ(suggestor.num_observations(), 20u);

  std::vector<Config> batch = suggestor.suggest_batch(4, rng);
  ASSERT_EQ(batch.size(), 4u);
  // Lies are pending placeholders: they steer later draws in the batch but
  // never enter the observation history.
  EXPECT_EQ(suggestor.num_observations(), 20u);
  EXPECT_EQ(suggestor.num_pending(), 4u);

  // Each real result retracts exactly its own lie.
  for (std::size_t i = 0; i < batch.size(); ++i) {
    suggestor.observe({batch[i], 1.0, quadratic(batch[i], 1)});
    EXPECT_EQ(suggestor.num_pending(), 3u - i);
  }
  EXPECT_EQ(suggestor.num_pending(), 0u);
  EXPECT_EQ(suggestor.num_observations(), 24u);
}

TEST(TpeBatchTest, BatchedSearchSubmitsFullRounds) {
  // 10 trials at width 4 must arrive as batches of 4, 4, 2 with globally
  // increasing trial indices — that is what lets a parallel evaluator keep
  // all workers busy.
  std::vector<std::size_t> batch_sizes;
  int expected_index = 0;
  bool indices_ok = true;
  const BatchEvalFn eval = [&](const std::vector<EvalRequest>& batch) {
    batch_sizes.push_back(batch.size());
    std::vector<double> objectives;
    for (const EvalRequest& request : batch) {
      if (request.trial_index != expected_index++) indices_ok = false;
      objectives.push_back(quadratic(request.config, request.resource));
    }
    return objectives;
  };
  TpeSearch search(quadratic_space(), 1, 10, {}, /*batch_size=*/4);
  Rng rng(23);
  SearchResult result = search.optimize_batch(eval, rng);
  EXPECT_EQ(result.trials.size(), 10u);
  ASSERT_EQ(batch_sizes.size(), 3u);
  EXPECT_EQ(batch_sizes[0], 4u);
  EXPECT_EQ(batch_sizes[1], 4u);
  EXPECT_EQ(batch_sizes[2], 2u);
  EXPECT_TRUE(indices_ok);
}

TEST(TpeBatchTest, SameSeedSameTrajectoryAtAnyBatchSize) {
  for (const int width : {2, 3, 4, 7}) {
    Rng rng_a(24), rng_b(24);
    SearchResult a = TpeSearch(quadratic_space(), 1, 21, {}, width)
                         .optimize(quadratic, rng_a);
    SearchResult b = TpeSearch(quadratic_space(), 1, 21, {}, width)
                         .optimize(quadratic, rng_b);
    ASSERT_EQ(a.trials.size(), b.trials.size()) << "width " << width;
    EXPECT_EQ(a.best_config, b.best_config) << "width " << width;
    for (std::size_t i = 0; i < a.trials.size(); ++i) {
      EXPECT_EQ(a.trials[i].config, b.trials[i].config)
          << "width " << width << " trial " << i;
    }
  }
}

TEST(TpeBatchTest, BatchedSearchStillConverges) {
  // Constant-liar batching trades some suggestion quality for parallelism;
  // it must still beat noise on a smooth objective.
  TpeSearch search(quadratic_space(), 1, 48, {}, /*batch_size=*/4);
  Rng rng(10);
  SearchResult result = search.optimize(quadratic, rng);
  EXPECT_EQ(result.trials.size(), 48u);
  EXPECT_LT(result.best_objective, 0.4);
}

TEST(SearchFactoryTest, RejectsInvalidHyperbandResources) {
  for (const char* name : {"hyperband", "bohb"}) {
    const HyperBandOptions zero_min{0, 16, 2, 0};
    EXPECT_EQ(
        make_search_algorithm(name, quadratic_space(), zero_min).status().code(),
        StatusCode::kInvalidArgument)
        << name;
    const HyperBandOptions inverted{4, 2, 2, 0};
    EXPECT_EQ(
        make_search_algorithm(name, quadratic_space(), inverted).status().code(),
        StatusCode::kInvalidArgument)
        << name;
  }
  // Algorithms that never take the log of max/min are unaffected.
  const HyperBandOptions inverted{4, 2, 2, 0};
  for (const char* name : {"grid", "random", "tpe"}) {
    EXPECT_TRUE(
        make_search_algorithm(name, quadratic_space(), inverted).ok())
        << name;
  }
}

TEST(SearchFactoryTest, KnownAndUnknownNames) {
  HyperBandOptions options{1, 4, 2, 0};
  for (const char* name : {"grid", "random", "hyperband", "bohb", "tpe"}) {
    Result<std::unique_ptr<SearchAlgorithm>> algo =
        make_search_algorithm(name, quadratic_space(), options);
    ASSERT_TRUE(algo.ok()) << name;
  }
  EXPECT_FALSE(
      make_search_algorithm("annealing", quadratic_space(), options).ok());
}

TEST(SearchResultTest, RecordsBestAndIds) {
  SearchResult result;
  result.record({{"x", 1.0}}, 1, 5.0);
  result.record({{"x", 2.0}}, 1, 3.0);
  result.record({{"x", 3.0}}, 1, 4.0);
  EXPECT_DOUBLE_EQ(result.best_objective, 3.0);
  EXPECT_DOUBLE_EQ(result.best_config.at("x"), 2.0);
  EXPECT_EQ(result.trials[2].id, 2);
}

TEST(SearchDeterminismTest, SameSeedSameTrajectory) {
  HyperBandOptions options{1, 8, 2, 0};
  Rng rng1(12), rng2(12);
  SearchResult a = make_bohb(quadratic_space(), options)
                       ->optimize(quadratic, rng1);
  SearchResult b = make_bohb(quadratic_space(), options)
                       ->optimize(quadratic, rng2);
  ASSERT_EQ(a.trials.size(), b.trials.size());
  for (std::size_t i = 0; i < a.trials.size(); ++i) {
    EXPECT_EQ(a.trials[i].config, b.trials[i].config);
  }
}

}  // namespace
}  // namespace edgetune
