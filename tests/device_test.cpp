// Tests for the edge-device emulator: profiles, roofline cost model
// behaviours the paper's motivating figures rely on, power meter, perf
// counters, and the ground-truth perturbation.
#include <gtest/gtest.h>

#include "device/cost_model.hpp"
#include "device/perf_counters.hpp"
#include "device/power_meter.hpp"
#include "models/models.hpp"

namespace edgetune {
namespace {

ArchSpec resnet18_arch() {
  Rng rng(1);
  return build_resnet({.depth = 18}, rng).value().arch;
}

TEST(ProfileTest, BuiltinsResolveByName) {
  for (const char* name : {"armv7", "rpi3b", "i7", "titan"}) {
    Result<DeviceProfile> p = device_by_name(name);
    ASSERT_TRUE(p.ok()) << name;
    EXPECT_EQ(p.value().name, name);
    EXPECT_GT(p.value().max_cores, 0);
    EXPECT_FALSE(p.value().freq_levels_ghz.empty());
  }
  EXPECT_FALSE(device_by_name("tpu").ok());
}

TEST(ProfileTest, EdgeDevicesHaveNoGpu) {
  for (const DeviceProfile& p : all_edge_devices()) {
    EXPECT_FALSE(p.has_gpu()) << p.name;
  }
  EXPECT_TRUE(device_titan_server().has_gpu());
}

TEST(CostModelTest, RejectsInvalidInferenceConfigs) {
  CostModel model(device_rpi3b());
  ArchSpec arch = resnet18_arch();
  EXPECT_FALSE(model.inference_cost(arch, {.batch_size = 0}).ok());
  EXPECT_FALSE(
      model.inference_cost(arch, {.batch_size = 1, .cores = 9}).ok());
  EXPECT_FALSE(model
                   .inference_cost(
                       arch, {.batch_size = 1, .cores = 1, .freq_ghz = 1.11})
                   .ok());
}

TEST(CostModelTest, BaseFrequencyIsDefault) {
  CostModel model(device_rpi3b());
  ArchSpec arch = resnet18_arch();
  CostEstimate a =
      model.inference_cost(arch, {.batch_size = 1, .cores = 1}).value();
  CostEstimate b =
      model
          .inference_cost(arch, {.batch_size = 1, .cores = 1, .freq_ghz = 1.4})
          .value();
  EXPECT_DOUBLE_EQ(a.latency_s, b.latency_s);
}

TEST(CostModelTest, LowerFrequencyIsSlower) {
  CostModel model(device_i7_7567u());
  ArchSpec arch = resnet18_arch();
  CostEstimate slow =
      model
          .inference_cost(arch,
                          {.batch_size = 16, .cores = 4, .freq_ghz = 1.2})
          .value();
  CostEstimate fast =
      model
          .inference_cost(arch,
                          {.batch_size = 16, .cores = 4, .freq_ghz = 3.5})
          .value();
  EXPECT_GT(slow.latency_s, fast.latency_s);
}

// Fig 3b: throughput rises with batch (weight amortization), then saturates
// and decays once the working set spills the cache.
TEST(CostModelTest, BatchThroughputRisesThenFalls) {
  CostModel model(device_armv7());  // 4 GB: batch 100 fits
  ArchSpec arch = resnet18_arch();
  const double t1 =
      model.inference_cost(arch, {.batch_size = 1, .cores = 4})
          .value()
          .throughput_sps;
  const double t10 =
      model.inference_cost(arch, {.batch_size = 10, .cores = 4})
          .value()
          .throughput_sps;
  const double t100 =
      model.inference_cost(arch, {.batch_size = 100, .cores = 4})
          .value()
          .throughput_sps;
  EXPECT_GT(t10, t1);    // multi-sample helps...
  EXPECT_LT(t100, t10);  // ...until saturation/decay (paper §2.3.3)
}

// Fig 5a: single-image inference gains nothing from more cores but burns
// more energy.
TEST(CostModelTest, SingleImageCoresWasteEnergy) {
  CostModel model(device_i7_7567u());
  ArchSpec arch = resnet18_arch();
  CostEstimate c1 =
      model.inference_cost(arch, {.batch_size = 1, .cores = 1}).value();
  CostEstimate c4 =
      model.inference_cost(arch, {.batch_size = 1, .cores = 4}).value();
  EXPECT_LT(c4.throughput_sps / c1.throughput_sps, 2.0);  // far from 4x
  EXPECT_GT(c4.energy_per_sample_j(1), c1.energy_per_sample_j(1) * 0.9);
}

// Fig 5b: multi-image inference scales sublinearly with cores.
TEST(CostModelTest, CoreScalingIsSublinear) {
  CostModel model(device_rpi3b());
  ArchSpec arch = resnet18_arch();
  const double t1 = model.inference_cost(arch, {.batch_size = 10, .cores = 1})
                        .value()
                        .throughput_sps;
  const double t4 = model.inference_cost(arch, {.batch_size = 10, .cores = 4})
                        .value()
                        .throughput_sps;
  EXPECT_GT(t4, t1);
  EXPECT_LT(t4, 4.0 * t1);
}

TEST(CostModelTest, TrainStepRejectsBadGpuCount) {
  CostModel model(device_titan_server());
  ArchSpec arch = resnet18_arch();
  EXPECT_FALSE(
      model.train_step_cost(arch, {.batch_size = 64, .num_gpus = 9}).ok());
  CostModel edge(device_rpi3b());
  EXPECT_FALSE(
      edge.train_step_cost(arch, {.batch_size = 64, .num_gpus = 1}).ok());
}

// Fig 4a: small batches get no faster (or slower) with more GPUs.
TEST(CostModelTest, SmallBatchMultiGpuDoesNotHelp) {
  CostModel model(device_titan_server());
  ArchSpec arch = resnet18_arch();
  const double t1 =
      model.train_step_cost(arch, {.batch_size = 32, .num_gpus = 1})
          .value()
          .latency_s;
  const double t8 =
      model.train_step_cost(arch, {.batch_size = 32, .num_gpus = 8})
          .value()
          .latency_s;
  EXPECT_GE(t8, t1 * 0.95);  // no speedup; typically a slowdown
}

// Fig 4b: large batches speed up sublinearly while energy increases.
TEST(CostModelTest, LargeBatchMultiGpuSublinearAndCostsEnergy) {
  CostModel model(device_titan_server());
  ArchSpec arch = resnet18_arch();
  CostEstimate g1 =
      model.train_step_cost(arch, {.batch_size = 1024, .num_gpus = 1})
          .value();
  CostEstimate g8 =
      model.train_step_cost(arch, {.batch_size = 1024, .num_gpus = 8})
          .value();
  EXPECT_LT(g8.latency_s, g1.latency_s);                 // faster...
  EXPECT_GT(g8.latency_s, g1.latency_s / 8.0);           // ...sublinearly
  EXPECT_GT(g8.energy_j, g1.energy_j * 0.9);             // energy not saved
}

TEST(CostModelTest, CpuTrainingWorksOnServer) {
  CostModel model(device_titan_server());
  ArchSpec arch = resnet18_arch();
  Result<CostEstimate> est =
      model.train_step_cost(arch, {.batch_size = 64, .num_gpus = 0});
  ASSERT_TRUE(est.ok());
  EXPECT_GT(est.value().latency_s, 0);
}

TEST(CostModelTest, EpochCostScalesWithDatasetSize) {
  CostModel model(device_titan_server());
  ArchSpec arch = resnet18_arch();
  TrainConfig config{.batch_size = 128, .num_gpus = 1};
  const double half =
      model.train_epoch_cost(arch, config, 25000).value().latency_s;
  const double full =
      model.train_epoch_cost(arch, config, 50000).value().latency_s;
  EXPECT_NEAR(full / half, 2.0, 0.05);
  EXPECT_FALSE(model.train_epoch_cost(arch, config, 0).ok());
}

TEST(CostModelTest, BiggerModelCostsMore) {
  CostModel model(device_rpi3b());
  Rng rng(2);
  ArchSpec small = build_resnet({.depth = 18}, rng).value().arch;
  ArchSpec big = build_resnet({.depth = 50}, rng).value().arch;
  InferenceConfig config{.batch_size = 8, .cores = 4};
  EXPECT_GT(model.inference_cost(big, config).value().latency_s,
            model.inference_cost(small, config).value().latency_s);
}

TEST(CostModelTest, EstimatesArePositiveAndConsistent) {
  CostModel model(device_armv7());
  ArchSpec arch = resnet18_arch();
  CostEstimate est =
      model.inference_cost(arch, {.batch_size = 4, .cores = 2}).value();
  EXPECT_GT(est.latency_s, 0);
  EXPECT_GT(est.power_w, 0);
  EXPECT_NEAR(est.energy_j, est.power_w * est.latency_s, 1e-9);
  EXPECT_NEAR(est.throughput_sps, 4.0 / est.latency_s, 1e-6);
  EXPECT_NEAR(est.energy_per_sample_j(4), est.energy_j / 4.0, 1e-12);
}

TEST(CostModelTest, RamFeasibilityEnforced) {
  // A 1 GB Raspberry Pi cannot hold ResNet18 activations for batch 100.
  CostModel rpi(device_rpi3b());
  ArchSpec arch = resnet18_arch();
  Result<CostEstimate> too_big =
      rpi.inference_cost(arch, {.batch_size = 100, .cores = 4});
  ASSERT_FALSE(too_big.ok());
  EXPECT_EQ(too_big.status().code(), StatusCode::kFailedPrecondition);
  // The same configuration fits a 4 GB board.
  CostModel arm(device_armv7());
  EXPECT_TRUE(arm.inference_cost(arch, {.batch_size = 100, .cores = 4}).ok());
}

TEST(CostModelTest, PeakMemoryTracksWeightsAndBatch) {
  CostModel model(device_armv7());
  ArchSpec arch = resnet18_arch();
  const double m1 = model.inference_cost(arch, {.batch_size = 1, .cores = 1})
                        .value()
                        .peak_memory_bytes;
  const double m8 = model.inference_cost(arch, {.batch_size = 8, .cores = 1})
                        .value()
                        .peak_memory_bytes;
  EXPECT_GE(m1, arch.param_bytes());   // at least the weights
  EXPECT_GT(m8, m1);                   // activations scale with batch
  // Training holds weights + grads + optimizer state + stored activations.
  CostModel server(device_titan_server());
  const double train_mem =
      server.train_step_cost(arch, {.batch_size = 8, .num_gpus = 1})
          .value()
          .peak_memory_bytes;
  EXPECT_GT(train_mem, m8);
}

TEST(ProfileInferenceTest, LayerLatenciesSumToTotal) {
  CostModel model(device_armv7());
  ArchSpec arch = resnet18_arch();
  InferenceConfig config{.batch_size = 4, .cores = 2};
  auto layers = model.profile_inference(arch, config).value();
  const double total = model.inference_cost(arch, config).value().latency_s;
  double sum = 0;
  for (const auto& layer : layers) {
    EXPECT_GE(layer.latency_s, 0);
    sum += layer.latency_s;
  }
  EXPECT_EQ(layers.size(), arch.layers.size());
  EXPECT_NEAR(sum, total, 1e-9 + 1e-6 * total);
}

TEST(ProfileInferenceTest, ConvLayersDominateResNet) {
  CostModel model(device_i7_7567u());
  ArchSpec arch = resnet18_arch();
  auto layers =
      model.profile_inference(arch, {.batch_size = 8, .cores = 4}).value();
  double conv_like = 0, total = 0;
  for (const auto& layer : layers) {
    total += layer.latency_s;
    if (layer.kind == "resblock" || layer.kind == "conv2d" ||
        layer.kind == "bottleneck") {
      conv_like += layer.latency_s;
    }
  }
  EXPECT_GT(conv_like, 0.8 * total);
}

TEST(ProfileInferenceTest, InvalidConfigPropagates) {
  CostModel model(device_rpi3b());
  ArchSpec arch = resnet18_arch();
  EXPECT_FALSE(model.profile_inference(arch, {.batch_size = 0}).ok());
}

TEST(PerturbTest, DeterministicAndBounded) {
  DeviceProfile base = device_rpi3b();
  DeviceProfile a = perturb_profile(base, 42, 0.1);
  DeviceProfile b = perturb_profile(base, 42, 0.1);
  EXPECT_DOUBLE_EQ(a.mem_bandwidth_gbs, b.mem_bandwidth_gbs);
  DeviceProfile c = perturb_profile(base, 43, 0.1);
  EXPECT_NE(a.mem_bandwidth_gbs, c.mem_bandwidth_gbs);
  // Small sigma keeps values near nominal.
  EXPECT_NEAR(a.mem_bandwidth_gbs / base.mem_bandwidth_gbs, 1.0, 0.5);
}

TEST(PowerMeterTest, AccumulatesByLabel) {
  PowerMeter meter;
  SimClock clock;
  meter.record(clock, "train", 2.0, 10.0);
  meter.record(clock, "inference", 1.0, 5.0);
  meter.record(clock, "train", 1.0, 10.0);
  EXPECT_DOUBLE_EQ(clock.now(), 4.0);
  EXPECT_DOUBLE_EQ(meter.energy_j("train"), 30.0);
  EXPECT_DOUBLE_EQ(meter.energy_j("inference"), 5.0);
  EXPECT_DOUBLE_EQ(meter.total_energy_j(), 35.0);
  EXPECT_DOUBLE_EQ(meter.energy_j("absent"), 0.0);
  meter.reset();
  EXPECT_DOUBLE_EQ(meter.total_energy_j(), 0.0);
}

TEST(PerfCounterTest, EmitsAllPaperEvents) {
  ArchSpec arch = resnet18_arch();
  auto counters = collect_perf_counters(arch, device_armv7(),
                                        ExecutionPhase::kInference, 1);
  for (const std::string& event : perf_counter_events()) {
    ASSERT_TRUE(counters.count(event)) << event;
    EXPECT_GT(counters.at(event), 0) << event;
  }
  EXPECT_EQ(perf_counter_events().size(), 22u);
}

// The paper's Fig 1 observation: CPU-bound events consistent across phases,
// memory-bound events inflated during the training forward phase.
TEST(PerfCounterTest, MemoryEventsDivergeCpuEventsDoNot) {
  ArchSpec arch = resnet18_arch();
  const DeviceProfile device = device_armv7();
  auto train = collect_perf_counters(arch, device,
                                     ExecutionPhase::kTrainForward, 32);
  auto inf =
      collect_perf_counters(arch, device, ExecutionPhase::kInference, 32);

  auto ratio = [&](const std::string& event) {
    return train.at(event) / inf.at(event);
  };
  // CPU-bound: close to 1 in *rate* terms.
  EXPECT_NEAR(ratio("cpu.cycles"), 1.0, 0.2);
  EXPECT_NEAR(ratio("context.switches"), 1.0, 0.2);
  // Memory-bound: clearly higher during training.
  EXPECT_GT(ratio("cache.misses"), 1.5);
  EXPECT_GT(ratio("LLC.load.misses"), 1.5);
}

TEST(PerfCounterTest, RateBins) {
  EXPECT_EQ(perf_rate_bin(5e8), ">1e8");
  EXPECT_EQ(perf_rate_bin(5e7), "1e8-1e6");
  EXPECT_EQ(perf_rate_bin(5e5), "1e6-1e4");
  EXPECT_EQ(perf_rate_bin(5e3), "1e4-1e2");
  EXPECT_EQ(perf_rate_bin(50), "<1e2");
}

}  // namespace
}  // namespace edgetune
