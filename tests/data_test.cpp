// Tests for datasets: generators, views, splits, fractions, batch iteration.
#include <gtest/gtest.h>

#include <set>

#include "data/synthetic.hpp"

namespace edgetune {
namespace {

TEST(DatasetTest, MakeBatchStacksSamples) {
  Dataset ds({2}, 3);
  ds.add(Tensor({2}, {1.0f, 2.0f}), 0);
  ds.add(Tensor({2}, {3.0f, 4.0f}), 1);
  ds.add(Tensor({2}, {5.0f, 6.0f}), 2);
  Batch batch = ds.make_batch({2, 0});
  ASSERT_EQ(batch.size(), 2);
  EXPECT_EQ(batch.inputs.shape(), (Shape{2, 2}));
  EXPECT_FLOAT_EQ(batch.inputs[0], 5.0f);
  EXPECT_FLOAT_EQ(batch.inputs[2], 1.0f);
  EXPECT_EQ(batch.labels, (std::vector<std::int64_t>{2, 0}));
}

TEST(DatasetViewTest, FractionTakesPrefix) {
  Dataset ds({1}, 2);
  for (int i = 0; i < 10; ++i) ds.add(Tensor({1}, {float(i)}), i % 2);
  DatasetView view = DatasetView::all(ds);
  EXPECT_EQ(view.fraction(0.3).size(), 3);
  EXPECT_EQ(view.fraction(1.0).size(), 10);
  EXPECT_EQ(view.fraction(0.0).size(), 1);  // never empty
  EXPECT_EQ(view.fraction(2.0).size(), 10);  // clamped
}

TEST(DatasetViewTest, SplitIsDisjointAndComplete) {
  Dataset ds({1}, 2);
  for (int i = 0; i < 100; ++i) ds.add(Tensor({1}, {float(i)}), 0);
  Rng rng(1);
  auto [a, b] = DatasetView::all(ds).split(0.8, rng);
  EXPECT_EQ(a.size(), 80);
  EXPECT_EQ(b.size(), 20);
  std::set<float> seen;
  for (std::int64_t i = 0; i < a.size(); ++i) {
    seen.insert(a.batch(i, 1).inputs[0]);
  }
  for (std::int64_t i = 0; i < b.size(); ++i) {
    const float v = b.batch(i, 1).inputs[0];
    EXPECT_EQ(seen.count(v), 0u) << "overlap at " << v;
    seen.insert(v);
  }
  EXPECT_EQ(seen.size(), 100u);
}

TEST(DatasetViewTest, BatchClampsAtEnd) {
  Dataset ds({1}, 2);
  for (int i = 0; i < 5; ++i) ds.add(Tensor({1}, {float(i)}), 0);
  DatasetView view = DatasetView::all(ds);
  EXPECT_EQ(view.batch(3, 10).size(), 2);
  EXPECT_EQ(view.batch(5, 10).size(), 0);
}

TEST(BatchIteratorTest, CoversEverySampleOncePerEpoch) {
  Dataset ds({1}, 2);
  for (int i = 0; i < 23; ++i) ds.add(Tensor({1}, {float(i)}), 0);
  Rng rng(2);
  BatchIterator iter(DatasetView::all(ds), 5, rng);
  iter.begin_epoch();
  std::multiset<float> seen;
  std::int64_t total = 0;
  for (Batch b = iter.next(); b.size() > 0; b = iter.next()) {
    for (std::int64_t i = 0; i < b.size(); ++i) seen.insert(b.inputs[i]);
    total += b.size();
  }
  EXPECT_EQ(total, 23);
  EXPECT_EQ(seen.size(), 23u);
  for (int i = 0; i < 23; ++i) EXPECT_EQ(seen.count(float(i)), 1u);
}

TEST(BatchIteratorTest, ReshufflesBetweenEpochs) {
  Dataset ds({1}, 2);
  for (int i = 0; i < 50; ++i) ds.add(Tensor({1}, {float(i)}), 0);
  Rng rng(3);
  BatchIterator iter(DatasetView::all(ds), 50, rng);
  iter.begin_epoch();
  Batch first = iter.next();
  iter.begin_epoch();
  Batch second = iter.next();
  int same = 0;
  for (std::int64_t i = 0; i < 50; ++i) {
    if (first.inputs[i] == second.inputs[i]) ++same;
  }
  EXPECT_LT(same, 25);
}

class SyntheticGeneratorTest
    : public ::testing::TestWithParam<WorkloadKind> {};

TEST_P(SyntheticGeneratorTest, SizesShapesAndLabels) {
  const WorkloadKind kind = GetParam();
  auto ds = make_workload_data(kind, 200, 7);
  ASSERT_NE(ds, nullptr);
  EXPECT_EQ(ds->size(), 200);
  EXPECT_EQ(ds->num_classes(), workload_num_classes(kind));
  for (std::int64_t i = 0; i < ds->size(); ++i) {
    EXPECT_GE(ds->label(i), 0);
    EXPECT_LT(ds->label(i), ds->num_classes());
    EXPECT_EQ(ds->sample(i).shape(), ds->sample_shape());
  }
}

TEST_P(SyntheticGeneratorTest, DeterministicForSeed) {
  const WorkloadKind kind = GetParam();
  auto a = make_workload_data(kind, 50, 11);
  auto b = make_workload_data(kind, 50, 11);
  for (std::int64_t i = 0; i < 50; ++i) {
    EXPECT_EQ(a->label(i), b->label(i));
    ASSERT_EQ(a->sample(i).numel(), b->sample(i).numel());
    for (std::int64_t j = 0; j < a->sample(i).numel(); ++j) {
      EXPECT_EQ(a->sample(i)[j], b->sample(i)[j]);
    }
  }
}

TEST_P(SyntheticGeneratorTest, DifferentSeedsDiffer) {
  const WorkloadKind kind = GetParam();
  auto a = make_workload_data(kind, 50, 1);
  auto b = make_workload_data(kind, 50, 2);
  int identical = 0;
  for (std::int64_t i = 0; i < 50; ++i) {
    if (a->sample(i)[0] == b->sample(i)[0]) ++identical;
  }
  EXPECT_LT(identical, 25);
}

TEST_P(SyntheticGeneratorTest, AllClassesRepresented) {
  const WorkloadKind kind = GetParam();
  auto ds = make_workload_data(kind, 500, 3);
  std::set<std::int64_t> classes;
  for (std::int64_t i = 0; i < ds->size(); ++i) classes.insert(ds->label(i));
  EXPECT_EQ(static_cast<std::int64_t>(classes.size()), ds->num_classes());
}

INSTANTIATE_TEST_SUITE_P(
    AllWorkloads, SyntheticGeneratorTest,
    ::testing::Values(WorkloadKind::kImageClassification,
                      WorkloadKind::kSpeech, WorkloadKind::kNlp,
                      WorkloadKind::kDetection),
    [](const ::testing::TestParamInfo<WorkloadKind>& info) {
      return workload_kind_name(info.param);
    });

TEST(SyntheticTextTest, TokensWithinProxyVocab) {
  auto ds = make_workload_data(WorkloadKind::kNlp, 100, 5);
  for (std::int64_t i = 0; i < ds->size(); ++i) {
    const Tensor& s = ds->sample(i);
    for (std::int64_t j = 0; j < s.numel(); ++j) {
      EXPECT_GE(s[j], 0.0f);
      EXPECT_LT(s[j], 200.0f);
    }
  }
}

TEST(WorkloadInfoTest, Table1Rows) {
  const auto& ic = workload_info(WorkloadKind::kImageClassification);
  EXPECT_STREQ(ic.id, "IC");
  EXPECT_STREQ(ic.paper_dataset, "CIFAR10");
  EXPECT_EQ(ic.train_samples, 50000);
  const auto& od = workload_info(WorkloadKind::kDetection);
  EXPECT_EQ(od.test_samples, 41000);
}

}  // namespace
}  // namespace edgetune
