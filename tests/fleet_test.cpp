// Tests for the distributed tuning fleet (DESIGN §5.5): wire framing and
// its failure modes, the fleet message marshaling, the options fingerprint,
// coordinator loss handling (requeue onto survivors, attempt exhaustion,
// no-worker grace), and the headline property — a fleet run's report is
// byte-identical to the single-process serial run, even across injected
// worker drops.
#include <gtest/gtest.h>

#include <cstdint>
#include <cstring>
#include <string>
#include <thread>
#include <vector>

#include "common/fault.hpp"
#include "common/rng.hpp"
#include "net/frame.hpp"
#include "net/messages.hpp"
#include "net/socket.hpp"
#include "tuning/fleet.hpp"
#include "tuning/model_server.hpp"
#include "tuning/report_io.hpp"

namespace edgetune {
namespace {

/// A connected loopback socket pair: write on one end, read on the other.
struct SocketPair {
  TcpListener listener;
  TcpStream client;
  TcpStream server;
};

SocketPair make_socket_pair() {
  SocketPair pair;
  Result<TcpListener> listener = TcpListener::listen(0);
  EXPECT_TRUE(listener.ok()) << listener.status().to_string();
  pair.listener = std::move(listener).value();
  Result<TcpStream> client =
      TcpStream::connect("127.0.0.1", pair.listener.port());
  EXPECT_TRUE(client.ok()) << client.status().to_string();
  pair.client = std::move(client).value();
  Result<TcpStream> server = pair.listener.accept();
  EXPECT_TRUE(server.ok()) << server.status().to_string();
  pair.server = std::move(server).value();
  return pair;
}

// --- Framing ---------------------------------------------------------------

TEST(FrameTest, RoundTripOverLoopback) {
  SocketPair pair = make_socket_pair();
  const std::string payload = "{\"hello\":\"fleet\"}";
  ASSERT_TRUE(write_frame(pair.client, 42, payload).is_ok());
  Result<Frame> frame = read_frame(pair.server);
  ASSERT_TRUE(frame.ok()) << frame.status().to_string();
  EXPECT_EQ(frame.value().type, 42);
  EXPECT_EQ(frame.value().payload, payload);
}

TEST(FrameTest, EmptyPayloadRoundTrips) {
  SocketPair pair = make_socket_pair();
  ASSERT_TRUE(write_frame(pair.client, 7, "").is_ok());
  Result<Frame> frame = read_frame(pair.server);
  ASSERT_TRUE(frame.ok()) << frame.status().to_string();
  EXPECT_EQ(frame.value().type, 7);
  EXPECT_TRUE(frame.value().payload.empty());
}

TEST(FrameTest, TruncatedFrameIsUnavailable) {
  // Header promises 100 payload bytes; the peer sends 3 and hangs up.
  SocketPair pair = make_socket_pair();
  const std::uint8_t header[5] = {0, 0, 0, 100, 1};
  ASSERT_TRUE(pair.client.write_all(header, sizeof header).is_ok());
  ASSERT_TRUE(pair.client.write_all("abc", 3).is_ok());
  pair.client.close();
  Result<Frame> frame = read_frame(pair.server);
  ASSERT_FALSE(frame.ok());
  EXPECT_EQ(frame.status().code(), StatusCode::kUnavailable);
}

TEST(FrameTest, TruncatedHeaderIsUnavailable) {
  SocketPair pair = make_socket_pair();
  const std::uint8_t partial[2] = {0, 0};
  ASSERT_TRUE(pair.client.write_all(partial, sizeof partial).is_ok());
  pair.client.close();
  Result<Frame> frame = read_frame(pair.server);
  ASSERT_FALSE(frame.ok());
  EXPECT_EQ(frame.status().code(), StatusCode::kUnavailable);
}

TEST(FrameTest, OversizedLengthPrefixRejectedBeforePayload) {
  // A hostile length prefix (4 GiB) must be refused from the header alone —
  // no allocation, no attempt to read the payload. The peer deliberately
  // sends nothing after the header: if the reader tried to consume the
  // payload it would block until the receive timeout instead of failing
  // immediately.
  SocketPair pair = make_socket_pair();
  ASSERT_TRUE(pair.server.set_receive_timeout(5.0).is_ok());
  const std::uint8_t header[5] = {0xFF, 0xFF, 0xFF, 0xFF, 1};
  ASSERT_TRUE(pair.client.write_all(header, sizeof header).is_ok());
  Result<Frame> frame = read_frame(pair.server);
  ASSERT_FALSE(frame.ok());
  EXPECT_EQ(frame.status().code(), StatusCode::kUnavailable);
  EXPECT_NE(frame.status().message().find("exceeds"), std::string::npos)
      << frame.status().message();
}

TEST(FrameTest, ClosedPeerIsUnavailable) {
  SocketPair pair = make_socket_pair();
  pair.client.close();
  Result<Frame> frame = read_frame(pair.server);
  ASSERT_FALSE(frame.ok());
  EXPECT_EQ(frame.status().code(), StatusCode::kUnavailable);
}

// --- Messages --------------------------------------------------------------

TEST(MessageTest, GarbagePayloadIsUnavailable) {
  SocketPair pair = make_socket_pair();
  ASSERT_TRUE(
      write_frame(pair.client,
                  static_cast<std::uint8_t>(MessageType::kHello),
                  "this is not json {{{").is_ok());
  Result<Message> msg = read_message(pair.server);
  ASSERT_FALSE(msg.ok());
  EXPECT_EQ(msg.status().code(), StatusCode::kUnavailable);
}

TEST(MessageTest, UnknownTypeByteIsUnavailable) {
  SocketPair pair = make_socket_pair();
  ASSERT_TRUE(write_frame(pair.client, 99, "{}").is_ok());
  Result<Message> msg = read_message(pair.server);
  ASSERT_FALSE(msg.ok());
  EXPECT_EQ(msg.status().code(), StatusCode::kUnavailable);
}

TEST(MessageTest, NonObjectBodyIsUnavailable) {
  SocketPair pair = make_socket_pair();
  ASSERT_TRUE(
      write_frame(pair.client,
                  static_cast<std::uint8_t>(MessageType::kPull),
                  "[1,2,3]").is_ok());
  Result<Message> msg = read_message(pair.server);
  ASSERT_FALSE(msg.ok());
  EXPECT_EQ(msg.status().code(), StatusCode::kUnavailable);
}

TEST(MessageTest, HandshakeMessagesRoundTrip) {
  HelloMessage hello;
  hello.options_fingerprint = "00ff00ff00ff00ff";
  Result<HelloMessage> hello2 = hello_from_json(hello_to_json(hello));
  ASSERT_TRUE(hello2.ok());
  EXPECT_EQ(hello2.value().protocol_version, kFleetProtocolVersion);
  EXPECT_EQ(hello2.value().options_fingerprint, hello.options_fingerprint);

  WelcomeMessage welcome;
  welcome.worker_id = 17;
  Result<WelcomeMessage> welcome2 =
      welcome_from_json(welcome_to_json(welcome));
  ASSERT_TRUE(welcome2.ok());
  EXPECT_EQ(welcome2.value().worker_id, 17);

  PullMessage pull;
  pull.max_trials = 4;
  Result<PullMessage> pull2 = pull_from_json(pull_to_json(pull));
  ASSERT_TRUE(pull2.ok());
  EXPECT_EQ(pull2.value().max_trials, 4);
}

// --- Marshaling ------------------------------------------------------------

TEST(MarshalTest, EvalRequestRoundTripsExactly) {
  EvalRequest request;
  request.trial_index = 13;
  request.config = {{"lr", 0.1 + 0.2}, {"layers", 3.0}, {"dropout", 1e-17}};
  request.resource = 2.0 / 3.0;
  Result<EvalRequest> back = eval_request_from_json(eval_request_to_json(request));
  ASSERT_TRUE(back.ok()) << back.status().to_string();
  EXPECT_EQ(back.value().trial_index, request.trial_index);
  EXPECT_EQ(back.value().config, request.config);  // bit-exact doubles
  EXPECT_EQ(back.value().resource, request.resource);
}

TEST(MarshalTest, TrialMeasurementRoundTripsExactly) {
  EdgeTuneOptions options;
  options.workload = WorkloadKind::kNlp;
  options.runner.proxy_samples = 240;
  options.inference.algorithm = "grid";
  options.seed = 5;
  EdgeTune tuner(options);
  EvalRequest request;
  request.trial_index = 0;
  Rng rng(7);
  request.config = tuner.model_search_space().sample(rng);
  request.resource = 4;

  const TrialMeasurement original = tuner.measure_one(request);
  Result<TrialMeasurement> back =
      trial_measurement_from_json(trial_measurement_to_json(original));
  ASSERT_TRUE(back.ok()) << back.status().to_string();
  const TrialMeasurement& m = back.value();
  EXPECT_EQ(m.setup_status.code(), original.setup_status.code());
  EXPECT_EQ(m.train_status.code(), original.train_status.code());
  EXPECT_EQ(m.arch_id, original.arch_id);
  EXPECT_EQ(m.attempts, original.attempts);
  EXPECT_EQ(m.retry_backoff_s, original.retry_backoff_s);  // bit-exact
  EXPECT_EQ(m.outcome.accuracy, original.outcome.accuracy);
  EXPECT_EQ(m.outcome.train_time_s, original.outcome.train_time_s);
  EXPECT_EQ(m.outcome.train_energy_j, original.outcome.train_energy_j);
  EXPECT_EQ(m.inference_attempted, original.inference_attempted);
  EXPECT_EQ(m.inference_status.code(), original.inference_status.code());
  EXPECT_EQ(m.rec.config, original.rec.config);
  EXPECT_EQ(m.rec.latency_s, original.rec.latency_s);
  EXPECT_EQ(m.rec.throughput_sps, original.rec.throughput_sps);
  EXPECT_EQ(m.rec.tuning_time_s, original.rec.tuning_time_s);
  EXPECT_EQ(m.rec.tuning_energy_j, original.rec.tuning_energy_j);
}

TEST(MarshalTest, MalformedMeasurementIsUnavailable) {
  Json garbage = Json(JsonArray{});
  EXPECT_FALSE(trial_measurement_from_json(garbage).ok());
  EXPECT_FALSE(eval_request_from_json(garbage).ok());
}

// --- Content keys and fingerprints -----------------------------------------

TEST(FleetIdentityTest, TrialContentKeyIgnoresTrialIndex) {
  EvalRequest a;
  a.trial_index = 0;
  a.config = {{"lr", 0.5}};
  a.resource = 4;
  EvalRequest b = a;
  b.trial_index = 99;  // scheduling identity, not content
  EXPECT_EQ(trial_content_key(a), trial_content_key(b));
  b.resource = 8;
  EXPECT_NE(trial_content_key(a), trial_content_key(b));
}

TEST(FleetIdentityTest, FingerprintCoversMeasurementOptionsOnly) {
  EdgeTuneOptions options;
  options.seed = 5;
  const std::string base = measurement_fingerprint(options);
  EXPECT_EQ(base.size(), 16u);  // 64-bit hex

  EdgeTuneOptions same = options;
  same.trial_workers = 8;       // scheduling: simulated worker count
  same.inference.workers = 3;   // scheduling: local pipeline width
  EXPECT_EQ(measurement_fingerprint(same), base);

  EdgeTuneOptions reseeded = options;
  reseeded.seed = 6;
  EXPECT_NE(measurement_fingerprint(reseeded), base);

  EdgeTuneOptions refitted = options;
  refitted.runner.proxy_samples += 1;
  EXPECT_NE(measurement_fingerprint(refitted), base);

  EdgeTuneOptions refaulted = options;
  Result<std::vector<FaultSpec>> plan =
      parse_fault_plan("site=trial.train,fail_first=1");
  ASSERT_TRUE(plan.ok());
  refaulted.faults = plan.value();
  EXPECT_NE(measurement_fingerprint(refaulted), base);
}

// --- Coordinator loss handling ---------------------------------------------

EdgeTuneOptions fleet_options() {
  EdgeTuneOptions options;
  options.workload = WorkloadKind::kNlp;
  options.hyperband = {1, 4, 2, 1};
  options.runner.proxy_samples = 240;
  options.inference.algorithm = "grid";
  options.seed = 5;
  return options;
}

FleetOptions fast_coordinator_options() {
  FleetOptions fleet;
  fleet.port = 0;
  fleet.no_worker_grace_s = 0.3;
  return fleet;
}

TEST(FleetCoordinatorTest, NoWorkersFailsBatchInsteadOfHanging) {
  const EdgeTuneOptions options = fleet_options();
  FleetCoordinator coordinator(fast_coordinator_options(),
                               measurement_fingerprint(options));
  ASSERT_TRUE(coordinator.start().is_ok());

  std::vector<EvalRequest> batch(2);
  batch[0].trial_index = 0;
  batch[0].config = {{"lr", 0.5}};
  batch[0].resource = 4;
  batch[1] = batch[0];
  batch[1].trial_index = 1;
  const std::vector<TrialMeasurement> results =
      coordinator.measure_batch(batch);
  ASSERT_EQ(results.size(), 2u);
  for (const TrialMeasurement& m : results) {
    EXPECT_EQ(m.train_status.code(), StatusCode::kUnavailable)
        << m.train_status.to_string();
  }
  coordinator.shutdown();
}

TEST(FleetCoordinatorTest, WorkerRefusedOnFingerprintMismatch) {
  const EdgeTuneOptions options = fleet_options();
  FleetCoordinator coordinator(fast_coordinator_options(),
                               "0000000000000000");  // nothing matches this
  ASSERT_TRUE(coordinator.start().is_ok());
  const Status status =
      run_fleet_worker("127.0.0.1", coordinator.port(), options);
  EXPECT_EQ(status.code(), StatusCode::kFailedPrecondition)
      << status.to_string();
  EXPECT_NE(status.message().find("fingerprint"), std::string::npos)
      << status.message();
  coordinator.shutdown();
}

TEST(FleetCoordinatorTest, WorkerRefusedOnProtocolVersionMismatch) {
  const EdgeTuneOptions options = fleet_options();
  FleetCoordinator coordinator(fast_coordinator_options(),
                               measurement_fingerprint(options));
  ASSERT_TRUE(coordinator.start().is_ok());

  Result<TcpStream> conn = TcpStream::connect("127.0.0.1", coordinator.port());
  ASSERT_TRUE(conn.ok()) << conn.status().to_string();
  TcpStream stream = std::move(conn).value();
  HelloMessage hello;
  hello.protocol_version = 99;
  hello.options_fingerprint = measurement_fingerprint(options);
  ASSERT_TRUE(
      write_message(stream, MessageType::kHello, hello_to_json(hello))
          .is_ok());
  Result<Message> reply = read_message(stream);
  ASSERT_TRUE(reply.ok()) << reply.status().to_string();
  EXPECT_EQ(reply.value().type, MessageType::kError);
  EXPECT_NE(reply.value().body.get_string("message", "").find("version"),
            std::string::npos);
  coordinator.shutdown();
}

/// Connects as a protocol-correct worker, pulls up to `pull` trials, then
/// vanishes without returning a single result. Returns how many trials it
/// was granted (-1 on any protocol error).
int pull_and_vanish(int port, const std::string& fingerprint, int pull) {
  Result<TcpStream> conn = TcpStream::connect("127.0.0.1", port);
  if (!conn.ok()) return -1;
  TcpStream stream = std::move(conn).value();
  HelloMessage hello;
  hello.options_fingerprint = fingerprint;
  if (!write_message(stream, MessageType::kHello, hello_to_json(hello))
           .is_ok()) {
    return -1;
  }
  Result<Message> welcome = read_message(stream);
  if (!welcome.ok() || welcome.value().type != MessageType::kWelcome) {
    return -1;
  }
  PullMessage request;
  request.max_trials = pull;
  if (!write_message(stream, MessageType::kPull, pull_to_json(request))
           .is_ok()) {
    return -1;
  }
  Result<Message> batch = read_message(stream);
  if (!batch.ok() || batch.value().type != MessageType::kBatch) return -1;
  const Json* trials = batch.value().body.find("trials");
  if (trials == nullptr || !trials->is_array()) return -1;
  stream.close();  // mid-batch disconnect: all granted trials still pending
  return static_cast<int>(trials->as_array().size());
}

TEST(FleetCoordinatorTest, MidBatchDisconnectRequeuesOntoSurvivor) {
  const EdgeTuneOptions options = fleet_options();
  const std::string fingerprint = measurement_fingerprint(options);
  FleetOptions fleet = fast_coordinator_options();
  fleet.no_worker_grace_s = 10;  // the survivor needs time to boot
  FleetCoordinator coordinator(fleet, fingerprint);
  ASSERT_TRUE(coordinator.start().is_ok());

  // Build a small real batch from the model search space.
  EdgeTune tuner(options);
  Rng rng(7);
  std::vector<EvalRequest> batch(3);
  for (int i = 0; i < 3; ++i) {
    batch[i].trial_index = i;
    batch[i].config = tuner.model_search_space().sample(rng);
    batch[i].resource = 4;
  }

  std::vector<TrialMeasurement> results;
  std::thread search([&] { results = coordinator.measure_batch(batch); });

  // A faulty worker grabs the whole batch and dies without reporting.
  const int granted = pull_and_vanish(coordinator.port(), fingerprint, 16);
  EXPECT_EQ(granted, 3);

  // A healthy worker then joins and must complete every requeued trial.
  std::thread survivor([&] {
    const Status status =
        run_fleet_worker("127.0.0.1", coordinator.port(), options);
    EXPECT_TRUE(status.is_ok()) << status.to_string();
  });

  search.join();
  coordinator.shutdown();
  survivor.join();

  ASSERT_EQ(results.size(), 3u);
  for (std::size_t i = 0; i < results.size(); ++i) {
    EXPECT_TRUE(results[i].train_status.is_ok())
        << results[i].train_status.to_string();
    // Measurements are content-pure: the survivor's answer must equal a
    // local one for the identical request.
    const TrialMeasurement local = tuner.measure_one(batch[i]);
    EXPECT_EQ(results[i].arch_id, local.arch_id);
    EXPECT_EQ(results[i].outcome.accuracy, local.outcome.accuracy);
    EXPECT_EQ(results[i].outcome.train_time_s, local.outcome.train_time_s);
  }
}

TEST(FleetCoordinatorTest, RepeatedLossesExhaustDispatchAttempts) {
  const EdgeTuneOptions options = fleet_options();
  const std::string fingerprint = measurement_fingerprint(options);
  FleetOptions fleet = fast_coordinator_options();
  fleet.max_dispatch_attempts = 2;
  fleet.no_worker_grace_s = 10;  // losses, not absence, must end this batch
  FleetCoordinator coordinator(fleet, fingerprint);
  ASSERT_TRUE(coordinator.start().is_ok());

  std::vector<EvalRequest> batch(2);
  batch[0].trial_index = 0;
  batch[0].config = {{"lr", 0.5}};
  batch[0].resource = 4;
  batch[1] = batch[0];
  batch[1].trial_index = 1;

  std::vector<TrialMeasurement> results;
  std::thread search([&] { results = coordinator.measure_batch(batch); });
  // Two vanishing workers burn both dispatch attempts for both trials.
  for (int round = 0; round < 2; ++round) {
    EXPECT_EQ(pull_and_vanish(coordinator.port(), fingerprint, 16), 2);
  }
  search.join();
  coordinator.shutdown();

  ASSERT_EQ(results.size(), 2u);
  for (const TrialMeasurement& m : results) {
    EXPECT_EQ(m.train_status.code(), StatusCode::kUnavailable)
        << m.train_status.to_string();
    EXPECT_EQ(m.attempts, 2);
    EXPECT_NE(m.train_status.message().find("dispatch attempts"),
              std::string::npos)
        << m.train_status.message();
  }
}

// --- End-to-end byte parity ------------------------------------------------

/// Runs the full EdgeTune search on an in-process fleet of `workers` worker
/// threads and returns the dumped report JSON.
std::string run_on_fleet(const EdgeTuneOptions& base, int workers) {
  FleetOptions fleet_opts;
  fleet_opts.port = 0;
  auto fleet = std::make_shared<FleetCoordinator>(
      fleet_opts, measurement_fingerprint(base));
  EXPECT_TRUE(fleet->start().is_ok());

  std::vector<std::thread> crew;
  crew.reserve(static_cast<std::size_t>(workers));
  for (int i = 0; i < workers; ++i) {
    crew.emplace_back([&base, port = fleet->port()] {
      const Status status = run_fleet_worker("127.0.0.1", port, base);
      EXPECT_TRUE(status.is_ok()) << status.to_string();
    });
  }
  EXPECT_TRUE(fleet->wait_for_workers(workers, 30).is_ok());

  EdgeTuneOptions options = base;
  options.fleet = fleet;
  Result<TuningReport> report = EdgeTune(std::move(options)).run();
  fleet->shutdown();
  for (std::thread& thread : crew) thread.join();
  EXPECT_TRUE(report.ok()) << report.status().to_string();
  if (!report.ok()) return "<fleet run failed>";
  return report_to_json(report.value()).dump();
}

TEST(FleetParityTest, FleetReportIsByteIdenticalToSerial) {
  const EdgeTuneOptions options = fleet_options();
  Result<TuningReport> serial = EdgeTune(options).run();
  ASSERT_TRUE(serial.ok()) << serial.status().to_string();
  const std::string serial_dump = report_to_json(serial.value()).dump();
  EXPECT_EQ(run_on_fleet(options, 2), serial_dump);
}

TEST(FleetParityTest, InjectedWorkerDropsKeepByteParity) {
  // Every trial's first dispatch is dropped by the worker that drew it; the
  // coordinator re-dispatches, the retry succeeds, and the report still
  // equals the serial run's — worker loss may cost wall-clock, never bits.
  EdgeTuneOptions options = fleet_options();
  Result<std::vector<FaultSpec>> plan =
      parse_fault_plan("site=worker.drop,fail_first=1");
  ASSERT_TRUE(plan.ok()) << plan.status().to_string();
  options.faults.insert(options.faults.end(), plan.value().begin(),
                        plan.value().end());

  // worker.drop never fires in-process, so the serial report is the same
  // with or without the plan — but run it WITH the plan so the options
  // fingerprints (and any fault accounting) agree exactly.
  Result<TuningReport> serial = EdgeTune(options).run();
  ASSERT_TRUE(serial.ok()) << serial.status().to_string();
  const std::string serial_dump = report_to_json(serial.value()).dump();
  EXPECT_EQ(run_on_fleet(options, 2), serial_dump);
}

}  // namespace
}  // namespace edgetune
