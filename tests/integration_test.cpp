// End-to-end integration tests: complete EdgeTune jobs, baselines,
// hierarchical tuning, report invariants, reproducibility, pipelining.
#include <gtest/gtest.h>

#include <algorithm>
#include <cmath>
#include <filesystem>
#include <vector>

#include "common/stopwatch.hpp"
#include "models/models.hpp"
#include "tuning/baselines.hpp"
#include "tuning/model_server.hpp"

namespace edgetune {
namespace {

/// Small-but-real options: NLP is the fastest proxy workload.
EdgeTuneOptions small_options(std::uint64_t seed = 3) {
  EdgeTuneOptions options;
  options.workload = WorkloadKind::kNlp;
  options.hyperband = {1, 4, 2, 1};  // one bracket: 4@1, 2@2, 1@4
  options.runner.proxy_samples = 300;
  options.inference.algorithm = "grid";
  options.seed = seed;
  return options;
}

TEST(EdgeTuneTest, SearchSpaceMatchesWorkloadAndFlags) {
  EdgeTuneOptions options = small_options();
  EdgeTune tuner(options);
  SearchSpace space = tuner.model_search_space();
  EXPECT_NE(space.find("model_hparam"), nullptr);
  EXPECT_NE(space.find("train_batch"), nullptr);
  EXPECT_NE(space.find("lr"), nullptr);
  EXPECT_NE(space.find("num_gpus"), nullptr);

  options.tune_system_params = false;
  EdgeTune plain(options);
  EXPECT_EQ(plain.model_search_space().find("num_gpus"), nullptr);
}

TEST(EdgeTuneTest, EndToEndRunProducesConsistentReport) {
  EdgeTune tuner(small_options());
  Result<TuningReport> result = tuner.run();
  ASSERT_TRUE(result.ok()) << result.status().to_string();
  const TuningReport& report = result.value();

  EXPECT_EQ(report.system, "edgetune");
  EXPECT_FALSE(report.trials.empty());
  EXPECT_TRUE(std::isfinite(report.best_objective));
  EXPECT_GT(report.best_accuracy, 0.25);  // above chance on 4 classes
  EXPECT_GT(report.inference.throughput_sps, 0);

  // Report invariant: totals equal the sum over the trial log.
  double runtime = 0, energy = 0;
  for (const TrialLog& t : report.trials) {
    runtime += t.duration_s + t.inference_stall_s;
    energy += t.energy_j;
    EXPECT_GE(t.accuracy, 0);
    EXPECT_LE(t.accuracy, 1);
    EXPECT_GT(t.duration_s, 0);
  }
  EXPECT_NEAR(report.tuning_runtime_s, runtime, 1e-6);
  EXPECT_GE(report.tuning_energy_j, energy);  // + inference tuning energy
}

TEST(EdgeTuneTest, ReproducibleForSeed) {
  Result<TuningReport> a = EdgeTune(small_options(11)).run();
  Result<TuningReport> b = EdgeTune(small_options(11)).run();
  ASSERT_TRUE(a.ok());
  ASSERT_TRUE(b.ok());
  EXPECT_EQ(a.value().best_config, b.value().best_config);
  EXPECT_DOUBLE_EQ(a.value().tuning_runtime_s, b.value().tuning_runtime_s);
  ASSERT_EQ(a.value().trials.size(), b.value().trials.size());
  for (std::size_t i = 0; i < a.value().trials.size(); ++i) {
    EXPECT_DOUBLE_EQ(a.value().trials[i].accuracy,
                     b.value().trials[i].accuracy);
  }
}

TEST(EdgeTuneTest, CacheAvoidsRetuningRepeatedArchitectures) {
  EdgeTune tuner(small_options());
  TuningReport report = tuner.run().value();
  // The NLP space has 32 strides but more trials than distinct archs tried
  // at multiple rungs: survivors re-use their architecture's entry.
  EXPECT_GT(report.cache_hits + report.cache_misses, 0u);
  EXPECT_EQ(report.cache_misses, tuner.inference_server().cache().size());
}

TEST(EdgeTuneTest, BudgetPoliciesAllRun) {
  for (const char* policy : {"epochs", "dataset", "multi-budget", "time"}) {
    EdgeTuneOptions options = small_options();
    options.budget_policy = policy;
    Result<TuningReport> report = EdgeTune(options).run();
    ASSERT_TRUE(report.ok()) << policy;
  }
}

TEST(EdgeTuneTest, EnergyMetricRuns) {
  EdgeTuneOptions options = small_options();
  options.tuning_metric = MetricOfInterest::kEnergy;
  options.inference.objective = MetricOfInterest::kRuntime;
  Result<TuningReport> report = EdgeTune(options).run();
  ASSERT_TRUE(report.ok());
}

TEST(EdgeTuneTest, UnknownAlgorithmOrBudgetFails) {
  EdgeTuneOptions options = small_options();
  options.search_algorithm = "simulated-annealing";
  EXPECT_FALSE(EdgeTune(options).run().ok());
  options = small_options();
  options.budget_policy = "steps";
  EXPECT_FALSE(EdgeTune(options).run().ok());
}

TEST(TuneBaselineTest, NoInferenceAwarenessDefaultDeployment) {
  Result<TuningReport> result = run_tune_baseline(small_options());
  ASSERT_TRUE(result.ok());
  const TuningReport& report = result.value();
  EXPECT_EQ(report.system, "tune");
  EXPECT_DOUBLE_EQ(report.inference.config.at("inf_batch"), 1);
  EXPECT_DOUBLE_EQ(report.inference.config.at("cores"), 1);
  for (const TrialLog& t : report.trials) {
    EXPECT_DOUBLE_EQ(t.inference_stall_s, 0);
  }
}

TEST(TuneBaselineTest, EdgeTuneRecommendationBeatsDefaultDeployment) {
  // The core paper claim in miniature: the inference-aware system's
  // recommended deployment dominates the baseline's default deployment.
  EdgeTuneOptions options = small_options(21);
  TuningReport edgetune = EdgeTune(options).run().value();
  TuningReport tune = run_tune_baseline(options).value();
  EXPECT_GT(edgetune.inference.throughput_sps,
            tune.inference.throughput_sps);
  EXPECT_LT(edgetune.inference.energy_per_sample_j,
            tune.inference.energy_per_sample_j);
}

TEST(HyperPowerTest, PowerCapTerminatesTrialsEarly) {
  EdgeTuneOptions options = small_options(31);
  options.random_trials = 8;
  // Calibrate the cap from an uncapped run: the median trial power. Trials
  // above it must then be terminated (objective = inf).
  TuningReport probe =
      run_hyperpower_baseline(options, 1e12).value();
  std::vector<double> powers;
  for (const TrialLog& t : probe.trials) {
    powers.push_back(t.energy_j / t.duration_s);
  }
  std::sort(powers.begin(), powers.end());
  ASSERT_GT(powers.back(), powers.front());  // some spread to cap on
  const double cap = 0.5 * (powers.front() + powers.back());

  Result<TuningReport> result = run_hyperpower_baseline(options, cap);
  ASSERT_TRUE(result.ok());
  EXPECT_EQ(result.value().system, "hyperpower");
  bool saw_capped = false;
  for (const TrialLog& t : result.value().trials) {
    if (!std::isfinite(t.objective)) saw_capped = true;
  }
  EXPECT_TRUE(saw_capped);
}

TEST(HyperPowerTest, GenerousCapBehavesLikePlainBo) {
  EdgeTuneOptions options = small_options(32);
  options.random_trials = 6;
  Result<TuningReport> result = run_hyperpower_baseline(options, 1e9);
  ASSERT_TRUE(result.ok());
  for (const TrialLog& t : result.value().trials) {
    EXPECT_TRUE(std::isfinite(t.objective));
  }
}

TEST(HierarchicalTest, TwoTiersProduceSystemParams) {
  EdgeTuneOptions options = small_options(41);
  Result<TuningReport> result = run_hierarchical(options);
  ASSERT_TRUE(result.ok());
  const TuningReport& report = result.value();
  EXPECT_EQ(report.system, "hierarchical");
  EXPECT_TRUE(report.best_config.count("num_gpus"));
  EXPECT_TRUE(std::isfinite(report.best_objective));
}

TEST(HierarchicalTest, OnefoldExploresJointSpaceHierarchicalDoesNot) {
  // Structural check of Fig 9: the onefold run varies num_gpus across
  // trials; the hierarchical tier-1 trials never do.
  EdgeTuneOptions options = small_options(51);
  TuningReport onefold = EdgeTune(options).run().value();
  bool varied = false;
  double first = onefold.trials.front().config.count("num_gpus")
                     ? onefold.trials.front().config.at("num_gpus")
                     : -1;
  for (const TrialLog& t : onefold.trials) {
    if (t.config.count("num_gpus") && t.config.at("num_gpus") != first) {
      varied = true;
    }
  }
  EXPECT_TRUE(varied);
}

TEST(HierarchicalTest, Tier2GridMatchesTrainDeviceGpus) {
  // The tier-2 grid is derived from the train device, not hardcoded
  // {1,2,4,8}: powers of two up to the GPU count, plus the count itself.
  EdgeTuneOptions options = small_options(42);
  options.train_device.num_gpus = 3;
  Result<TuningReport> result = run_hierarchical(options);
  ASSERT_TRUE(result.ok()) << result.status().to_string();
  std::vector<double> grid;
  for (const TrialLog& t : result.value().trials) {
    if (t.config.count("num_gpus")) grid.push_back(t.config.at("num_gpus"));
  }
  EXPECT_EQ(grid, (std::vector<double>{1, 2, 3}));
}

TEST(HierarchicalTest, Tier2AccountsInferenceStall) {
  // Regression: tier-2 trials used to be charged train_time_s only, silently
  // dropping the inference-tuning stall every other path pays. Disable the
  // cache so each tier-2 evaluation re-tunes (stalls are then nonzero: the
  // pinned-hyperparameter trials train faster than the 2.4 s emulated grid
  // search) and check the report decomposes exactly.
  EdgeTuneOptions options = small_options(61);
  options.inference.use_cache = false;
  Result<TuningReport> hier = run_hierarchical(options);
  ASSERT_TRUE(hier.ok()) << hier.status().to_string();

  // Tier 1 alone, reproduced with the same seed and options.
  EdgeTuneOptions tier1_options = options;
  tier1_options.tune_system_params = false;
  Result<TuningReport> tier1 = EdgeTune(tier1_options).run();
  ASSERT_TRUE(tier1.ok()) << tier1.status().to_string();

  const std::size_t tier1_trials = tier1.value().trials.size();
  ASSERT_GT(hier.value().trials.size(), tier1_trials);
  double tier2_span = 0;
  bool saw_stall = false;
  for (std::size_t i = tier1_trials; i < hier.value().trials.size(); ++i) {
    const TrialLog& t = hier.value().trials[i];
    EXPECT_GT(t.inference_tuning_s, 0) << "trial " << t.id;
    EXPECT_DOUBLE_EQ(t.inference_stall_s,
                     std::max(0.0, t.inference_tuning_s - t.duration_s))
        << "trial " << t.id;
    if (t.inference_stall_s > 0) saw_stall = true;
    tier2_span += t.duration_s + t.inference_stall_s;
  }
  EXPECT_TRUE(saw_stall);
  EXPECT_NEAR(hier.value().tuning_runtime_s,
              tier1.value().tuning_runtime_s + tier2_span, 1e-6);
}

TEST(PipeliningTest, InferenceTuningOverlapsTraining) {
  // Wall-clock check of Fig 6: submitting to the inference server returns
  // immediately; the result is consumed after "training" work.
  InferenceServerOptions inf_options;
  inf_options.algorithm = "grid";
  InferenceTuningServer server(device_rpi3b(), inf_options);
  Rng rng(1);
  ArchSpec arch = build_text_rnn({.stride = 7, .num_classes = 4}, rng)
                      .value()
                      .arch;
  Stopwatch watch;
  auto future = server.submit(arch);
  const double submit_ms = watch.elapsed_ms();
  ASSERT_TRUE(future.get().ok());
  EXPECT_LT(submit_ms, 50.0);  // submit did not block on the grid search
}

TEST(EvaluateInferenceAtTest, HonorsExplicitConfig) {
  EdgeTuneOptions options = small_options();
  Config model_config = {{"model_hparam", 2}, {"train_batch", 64},
                         {"lr", 0.05}};
  Config inf_config = {{"inf_batch", 4}, {"cores", 2}, {"freq_ghz", 0.0}};
  Result<InferenceRecommendation> rec =
      evaluate_inference_at(options, model_config, inf_config);
  ASSERT_TRUE(rec.ok());
  EXPECT_GT(rec.value().throughput_sps, 0);
  EXPECT_DOUBLE_EQ(rec.value().config.at("inf_batch"), 4);
}

}  // namespace
}  // namespace edgetune
