// Tests for the tunable kernel-routine layer (DESIGN §5.6): registry
// sanity, the bitwise-equality contract every routine owes the default
// blocked kernel (per layout, including epilogues, accumulation, and any
// intra-op thread count), the small-shape threading cutoff, the persistent
// RoutineProfileStore (round-trip, corrupt-file quarantine, best-effort
// persistence under injected faults), and the DP assignment: never worse
// than per-op greedy or the fixed default, strictly better on a fixture
// with asymmetric layout-conversion costs, and deterministic — including
// when served from a warmed profile.
#include <cstdint>
#include <cstdio>
#include <cstring>
#include <filesystem>
#include <fstream>
#include <random>
#include <string>
#include <thread>
#include <vector>

#include <gtest/gtest.h>

#include "common/fault.hpp"
#include "common/json.hpp"
#include "device/cost_model.hpp"
#include "models/models.hpp"
#include "tensor/gemm.hpp"
#include "tuning/report_io.hpp"
#include "tuning/routine_tuner.hpp"

namespace edgetune {
namespace {

std::vector<float> random_buffer(std::int64_t count, std::uint32_t seed) {
  std::mt19937 rng(seed);
  std::uniform_real_distribution<float> dist(-1.0f, 1.0f);
  std::vector<float> buffer(static_cast<std::size_t>(count));
  for (float& v : buffer) v = dist(rng);
  return buffer;
}

void expect_bitwise_equal(const std::vector<float>& expected,
                          const std::vector<float>& actual,
                          const std::string& context) {
  ASSERT_EQ(expected.size(), actual.size()) << context;
  for (std::size_t i = 0; i < expected.size(); ++i) {
    std::uint32_t eb, ab;
    std::memcpy(&eb, &expected[i], sizeof(eb));
    std::memcpy(&ab, &actual[i], sizeof(ab));
    ASSERT_EQ(eb, ab) << context << " at index " << i << ": " << expected[i]
                      << " vs " << actual[i];
  }
}

struct TempFile {
  std::string path;
  explicit TempFile(const std::string& name) {
    path = (std::filesystem::temp_directory_path() /
            ("edgetune_routine_test_" + name + "_" +
             std::to_string(::getpid())))
               .string();
    cleanup();
  }
  ~TempFile() { cleanup(); }
  void cleanup() const {
    std::error_code ec;
    std::filesystem::remove(path, ec);
    std::filesystem::remove(path + ".tmp", ec);
    std::filesystem::remove(path + ".corrupt", ec);
  }
};

// --- Registry ----------------------------------------------------------------

TEST(RoutineRegistryTest, IndexedByIdWithUniqueNames) {
  const std::vector<GemmRoutineInfo>& registry = gemm_routine_registry();
  ASSERT_GE(registry.size(), 7u);
  std::vector<std::string> names;
  for (std::size_t i = 0; i < registry.size(); ++i) {
    EXPECT_EQ(static_cast<std::size_t>(registry[i].id), i);
    EXPECT_NE(registry[i].name, nullptr);
    EXPECT_STRNE(registry[i].name, "");
    EXPECT_NE(registry[i].layout, nullptr);
    EXPECT_STRNE(registry[i].layout, "");
    names.emplace_back(registry[i].name);
    EXPECT_EQ(find_gemm_routine(registry[i].name), &registry[i]);
  }
  std::sort(names.begin(), names.end());
  EXPECT_EQ(std::unique(names.begin(), names.end()), names.end());
  EXPECT_EQ(find_gemm_routine("no_such_routine"), nullptr);
}

TEST(RoutineRegistryTest, DefaultRoutineIsBlocked) {
  EXPECT_EQ(current_gemm_routine(), GemmRoutineId::kBlocked);
  const GemmRoutineInfo* blocked = find_gemm_routine("blocked");
  ASSERT_NE(blocked, nullptr);
  EXPECT_EQ(blocked->id, GemmRoutineId::kBlocked);
}

// --- Bitwise equality contract ----------------------------------------------

struct GemmCase {
  GemmLayout layout;
  std::int64_t m, n, k;
};

// Odd shapes on purpose: partial microtiles in both directions and k both
// below and above every routine's cache block (kc spans 256..4096).
const GemmCase kGemmCases[] = {
    {GemmLayout::kNN, 7, 5, 3},      {GemmLayout::kNN, 37, 29, 300},
    {GemmLayout::kNN, 65, 17, 1100}, {GemmLayout::kTN, 7, 5, 3},
    {GemmLayout::kTN, 33, 41, 513},  {GemmLayout::kNT, 7, 5, 3},
    {GemmLayout::kNT, 37, 29, 300},  {GemmLayout::kNT, 129, 19, 4200},
};

std::vector<float> run_routine(GemmRoutineId id, const GemmCase& c,
                               bool accumulate, bool with_epilogue,
                               const std::vector<float>& a,
                               const std::vector<float>& b,
                               const std::vector<float>& bias) {
  std::vector<float> out =
      random_buffer(c.m * c.n, 99);  // same garbage for every routine
  GemmEpilogue epi;
  epi.bias = bias.data();
  gemm_with_routine(id, c.layout, c.m, c.n, c.k, a.data(), b.data(),
                    out.data(), accumulate, with_epilogue ? &epi : nullptr);
  return out;
}

TEST(RoutineContractTest, EveryRoutineMatchesBlockedBitwise) {
  const std::vector<GemmRoutineInfo>& registry = gemm_routine_registry();
  for (const GemmCase& c : kGemmCases) {
    const std::vector<float> a = random_buffer(c.m * c.k, 11);
    const std::vector<float> b = random_buffer(c.n * c.k, 22);
    const std::vector<float> bias = random_buffer(c.n, 33);
    for (bool accumulate : {false, true}) {
      for (bool with_epilogue : {false, true}) {
        const std::vector<float> want = run_routine(
            GemmRoutineId::kBlocked, c, accumulate, with_epilogue, a, b, bias);
        for (const GemmRoutineInfo& info : registry) {
          if (info.id == GemmRoutineId::kBlocked) continue;
          const std::vector<float> got =
              run_routine(info.id, c, accumulate, with_epilogue, a, b, bias);
          expect_bitwise_equal(
              want, got,
              std::string(info.name) + " layout=" +
                  std::to_string(int(c.layout)) +
                  " m=" + std::to_string(c.m) + " n=" + std::to_string(c.n) +
                  " k=" + std::to_string(c.k) +
                  (accumulate ? " accumulate" : "") +
                  (with_epilogue ? " epilogue" : ""));
        }
      }
    }
  }
}

TEST(RoutineContractTest, ScatterEpilogueMatchesBlockedBitwise) {
  // Conv-style store: rows = batch * spatial, scattered to [batch, n,
  // spatial]. 6 batches x 25 spatial positions, 16 filters, k = 77.
  const std::int64_t spatial = 25, batch = 6, n = 16, k = 77;
  const std::int64_t m = batch * spatial;
  const std::vector<float> a = random_buffer(m * k, 44);
  const std::vector<float> b = random_buffer(n * k, 55);
  const std::vector<float> bias = random_buffer(n, 66);
  auto run = [&](GemmRoutineId id) {
    std::vector<float> scratch(static_cast<std::size_t>(m * n));
    std::vector<float> out(static_cast<std::size_t>(m * n), -1.0f);
    GemmEpilogue epi;
    epi.bias = bias.data();
    epi.out = out.data();
    epi.scatter_spatial = spatial;
    gemm_with_routine(id, GemmLayout::kNT, m, n, k, a.data(), b.data(),
                      scratch.data(), false, &epi);
    return out;
  };
  const std::vector<float> want = run(GemmRoutineId::kBlocked);
  for (const GemmRoutineInfo& info : gemm_routine_registry()) {
    expect_bitwise_equal(want, run(info.id),
                         std::string("scatter ") + info.name);
  }
}

TEST(RoutineContractTest, EveryRoutineDeterministicAcrossThreadCounts) {
  const GemmCase c{GemmLayout::kNT, 210, 48, 700};  // several row blocks
  const std::vector<float> a = random_buffer(c.m * c.k, 12);
  const std::vector<float> b = random_buffer(c.n * c.k, 13);
  const std::vector<float> bias = random_buffer(c.n, 14);
  for (const GemmRoutineInfo& info : gemm_routine_registry()) {
    set_intra_op_threads(1);
    const std::vector<float> want =
        run_routine(info.id, c, false, true, a, b, bias);
    for (int threads : {2, 4}) {
      set_intra_op_threads(threads);
      const std::vector<float> got =
          run_routine(info.id, c, false, true, a, b, bias);
      expect_bitwise_equal(
          want, got,
          std::string(info.name) + " threads=" + std::to_string(threads));
    }
    set_intra_op_threads(1);
  }
}

TEST(RoutineContractTest, CutoffRoutineSkipsPoolForSmallShapes) {
  set_intra_op_threads(4);
  const std::int64_t k = 64;
  // Small: 64 x 64 = 4096 cells, under kGemmSmallShapeCells.
  {
    const std::vector<float> a = random_buffer(64 * k, 1);
    const std::vector<float> b = random_buffer(64 * k, 2);
    std::vector<float> out(64 * 64);
    const std::size_t before = gemm_pool_dispatches();
    gemm_with_routine(GemmRoutineId::kBlockedThreadsCutoff, GemmLayout::kNT,
                      64, 64, k, a.data(), b.data(), out.data());
    EXPECT_EQ(gemm_pool_dispatches(), before)
        << "small shape must run inline";
  }
  // Large: 512 x 512 cells, over the cutoff -> pool must engage.
  {
    const std::vector<float> a = random_buffer(512 * k, 3);
    const std::vector<float> b = random_buffer(512 * k, 4);
    std::vector<float> out(512 * 512);
    const std::size_t before = gemm_pool_dispatches();
    gemm_with_routine(GemmRoutineId::kBlockedThreadsCutoff, GemmLayout::kNT,
                      512, 512, k, a.data(), b.data(), out.data());
    EXPECT_GT(gemm_pool_dispatches(), before)
        << "large shape must use the pool";
  }
  set_intra_op_threads(1);
}

// --- Shape classes -----------------------------------------------------------

TEST(RoutineShapeClassTest, BucketsArePowerOfTwoFloors) {
  RoutineOp op{"conv2d", GemmLayout::kNT, 1000, 65, 576, 1};
  EXPECT_EQ(routine_shape_class(op), "nt/m512/n64/k512");
  const RoutineOp rep = routine_class_representative(op);
  EXPECT_EQ(rep.m, 512);
  EXPECT_EQ(rep.n, 64);
  EXPECT_EQ(rep.k, 512);
  EXPECT_EQ(rep.calls, 1);
  // Same class for every op inside the bucket, different outside it.
  RoutineOp same = op;
  same.m = 512;
  EXPECT_EQ(routine_shape_class(same), routine_shape_class(op));
  RoutineOp other = op;
  other.m = 4096;
  EXPECT_NE(routine_shape_class(other), routine_shape_class(op));
}

TEST(RoutineShapeClassTest, ArchExtractionCoversGemmLayers) {
  Rng rng(3);
  ArchSpec arch = build_resnet({.depth = 18}, rng).value().arch;
  const std::vector<RoutineOp> ops = routine_ops_for_arch(arch, 16);
  ASSERT_FALSE(ops.empty());
  for (const RoutineOp& op : ops) {
    EXPECT_GT(op.m, 0);
    EXPECT_GT(op.n, 0);
    EXPECT_GT(op.k, 0);
    EXPECT_GE(op.calls, 1);
  }
  // Larger batch means more GEMM rows, never fewer ops.
  EXPECT_EQ(routine_ops_for_arch(arch, 32).size(), ops.size());
}

// --- Profile store -----------------------------------------------------------

RoutineTimings sample_timings() {
  return {{"blocked", 1e-3}, {"naive", 5e-3}, {"blocked_wide", 0.8e-3}};
}

TEST(RoutineProfileStoreTest, RoundTripsThroughDisk) {
  TempFile file("roundtrip");
  {
    RoutineProfileStore store(file.path, /*flush_every=*/1);
    EXPECT_TRUE(store.store("rpi3b", "nt/m512/n64/k512", sample_timings())
                    .is_ok());
    EXPECT_TRUE(store.save().is_ok());
  }
  RoutineProfileStore reloaded(file.path);
  const auto timings = reloaded.lookup("rpi3b", "nt/m512/n64/k512");
  ASSERT_TRUE(timings.has_value());
  EXPECT_EQ(*timings, sample_timings());
  EXPECT_EQ(reloaded.size(), 1u);
  // Different device id is a different key.
  EXPECT_FALSE(reloaded.lookup("i7", "nt/m512/n64/k512").has_value());
}

TEST(RoutineProfileStoreTest, QuarantinesCorruptFileInsteadOfClobbering) {
  TempFile file("corrupt");
  {
    std::ofstream out(file.path);
    out << "{ this is not json";
  }
  RoutineProfileStore store(file.path, /*flush_every=*/1);
  EXPECT_EQ(store.size(), 0u);  // started empty, did not crash
  EXPECT_TRUE(std::filesystem::exists(file.path + ".corrupt"))
      << "corrupt input must be preserved for inspection";
  // The store still works and can persist over the old path.
  EXPECT_TRUE(store.store("host", "nn/m64/n64/k64", sample_timings()).is_ok());
  EXPECT_TRUE(store.save().is_ok());
  RoutineProfileStore reloaded(file.path);
  EXPECT_TRUE(reloaded.lookup("host", "nn/m64/n64/k64").has_value());
}

TEST(RoutineProfileStoreTest, PersistFailuresAreBestEffort) {
  TempFile file("faulty");
  RoutineProfileStore store(file.path, /*flush_every=*/1);
  FaultSpec spec;
  spec.site = fault_site::kRoutinePersist;
  spec.rate = 1.0;
  spec.code = StatusCode::kUnavailable;
  store.set_fault_injector(FaultInjector(7, {spec}));
  // Every store still succeeds in memory; the flush failures are counted.
  EXPECT_TRUE(store.store("host", "nt/m64/n64/k64", sample_timings()).is_ok());
  EXPECT_TRUE(store.store("host", "nt/m128/n64/k64", sample_timings()).is_ok());
  EXPECT_TRUE(store.lookup("host", "nt/m64/n64/k64").has_value());
  EXPECT_GE(store.persist_failures(), 2u);
  EXPECT_FALSE(store.save().is_ok()) << "explicit save must report the fault";
  EXPECT_FALSE(std::filesystem::exists(file.path));
}

TEST(RoutineProfileStoreTest, ConcurrentStoresAndLookups) {
  RoutineProfileStore store;  // in-memory
  std::vector<std::thread> threads;
  for (int t = 0; t < 4; ++t) {
    threads.emplace_back([&store, t] {
      for (int i = 0; i < 50; ++i) {
        const std::string cls = "nt/m" + std::to_string(64 << (i % 4)) +
                                "/n64/k" + std::to_string(t + 1);
        ASSERT_TRUE(store.store("host", cls, sample_timings()).is_ok());
        ASSERT_TRUE(store.lookup("host", cls).has_value());
      }
    });
  }
  for (std::thread& t : threads) t.join();
  EXPECT_EQ(store.size(), 16u);  // 4 classes x 4 distinct k per thread
}

// --- Assignment --------------------------------------------------------------

TEST(RoutineTunerTest, ProfileHitsStoreOnSecondQuery) {
  RoutineProfileStore store;
  AnalyticRoutineTimer timer(device_rpi3b());
  RoutineTuner tuner(timer, &store);
  RoutineOp op{"conv2d", GemmLayout::kNT, 512, 64, 512, 1};
  const RoutineTimings first = tuner.profile(op);
  ASSERT_EQ(first.size(), gemm_routine_registry().size());
  EXPECT_EQ(store.misses(), 1u);
  const RoutineTimings second = tuner.profile(op);
  EXPECT_EQ(second, first);
  EXPECT_EQ(store.hits(), 1u);
}

TEST(RoutineTunerTest, DpNeverWorseThanGreedyOrFixedBlocked) {
  AnalyticRoutineTimer timer(device_rpi3b());
  Rng rng(3);
  const ArchSpec arches[] = {
      build_resnet({.depth = 18}, rng).value().arch,
      build_alexnet({}, rng).value().arch,
      build_m5({}, rng).value().arch,
      build_text_rnn({}, rng).value().arch,
  };
  for (const ArchSpec& arch : arches) {
    for (std::int64_t batch : {1, 4, 16, 64}) {
      RoutineTuner tuner(timer, nullptr);
      const RoutineAssignment a = tuner.assign(routine_ops_for_arch(arch, batch));
      const double slack = 1e-12 * std::max(1.0, a.greedy_s);
      EXPECT_LE(a.total_s, a.greedy_s + slack);
      EXPECT_LE(a.total_s, a.fixed_blocked_s + slack);
      EXPECT_GE(a.conversion_s, 0.0);
      EXPECT_LE(a.conversion_s, a.total_s);
    }
  }
}

// A timer built to punish greedy: routine layouts alternate as the per-op
// winners, but conversions between different tags dwarf the per-op gains, so
// the optimum keeps one tag end-to-end. Greedy (blind to conversions) flips
// tags at every edge.
class AsymmetricTimer : public RoutineTimer {
 public:
  [[nodiscard]] std::string device_id() const override { return "fixture"; }
  [[nodiscard]] double time_op(const GemmRoutineInfo& routine,
                               const RoutineOp& op) const override {
    // blocked_l2small is the per-op argmin on odd ops, blocked_wide on even
    // ops, by a hair; everything else is far worse.
    const bool odd = (op.m / 64) % 2 == 1;
    if (std::strcmp(routine.name, "blocked_l2small") == 0)
      return odd ? 1.0 : 1.01;
    if (std::strcmp(routine.name, "blocked_wide") == 0)
      return odd ? 1.01 : 1.0;
    return 2.0;
  }
  [[nodiscard]] double layout_conversion_s(const std::string& from,
                                           const std::string& to,
                                           double /*bytes*/) const override {
    return from == to ? 0.0 : 0.5;  // >> the 0.01 per-op spread
  }
};

TEST(RoutineTunerTest, DpStrictlyBeatsGreedyOnAsymmetricFixture) {
  std::vector<RoutineOp> ops;
  for (int i = 0; i < 6; ++i) {
    // Alternate odd/even row buckets so greedy's winners alternate tags.
    ops.push_back({"conv2d", GemmLayout::kNT, (i % 2 == 0) ? 128 : 64, 64,
                   256, 1});
  }
  AsymmetricTimer timer;
  RoutineTuner tuner(timer, nullptr);
  const RoutineAssignment a = tuner.assign(ops);
  EXPECT_LT(a.total_s, a.greedy_s)
      << "greedy must pay the alternating-tag conversions";
  EXPECT_LT(a.total_s, a.fixed_blocked_s);
  // The optimum sticks to ONE tag across all ops.
  for (const RoutineOpAssignment& op : a.ops) {
    EXPECT_EQ(op.routine, a.ops.front().routine);
  }
}

TEST(RoutineTunerTest, AssignmentDeterministicAndStableThroughProfileCache) {
  Rng rng(3);
  ArchSpec arch = build_m5({}, rng).value().arch;
  AnalyticRoutineTimer timer(device_rpi3b());
  auto run = [&](RoutineProfileStore* store) {
    RoutineTuner tuner(timer, store);
    return tuner.assign(routine_ops_for_arch(arch, 16));
  };
  const RoutineAssignment fresh = run(nullptr);
  const RoutineAssignment again = run(nullptr);
  RoutineProfileStore store;
  const RoutineAssignment cold = run(&store);  // fills the store
  const RoutineAssignment warm = run(&store);  // served from it
  EXPECT_GT(warm.profile_hits, 0u);
  EXPECT_EQ(warm.profile_misses, 0u);
  for (const RoutineAssignment* other : {&again, &cold, &warm}) {
    ASSERT_EQ(other->ops.size(), fresh.ops.size());
    EXPECT_EQ(other->total_s, fresh.total_s);
    EXPECT_EQ(other->greedy_s, fresh.greedy_s);
    for (std::size_t i = 0; i < fresh.ops.size(); ++i) {
      EXPECT_EQ(other->ops[i].routine, fresh.ops[i].routine);
      EXPECT_EQ(other->ops[i].predicted_s, fresh.ops[i].predicted_s);
    }
  }
}

// --- Report serialization ----------------------------------------------------

TEST(RoutineReportTest, SectionAbsentWhenDisabledAndRoundTripsWhenEnabled) {
  TuningReport report;
  report.system = "edgetune";
  const Json clean = report_to_json(report);
  EXPECT_EQ(clean.find("routines"), nullptr)
      << "routine-less reports must stay byte-identical with older builds";

  report.routines_enabled = true;
  report.routines.device = "rpi3b";
  report.routines.total_s = 0.013;
  report.routines.conversion_s = 0.002;
  report.routines.greedy_s = 0.014;
  report.routines.fixed_blocked_s = 0.015;
  report.routines.profile_hits = 2;
  report.routines.profile_misses = 1;
  report.routines.ops.push_back(
      {"conv2d", "nt/m512/n64/k512", "blocked_wide", 0.011});
  const Json json = report_to_json(report);
  ASSERT_NE(json.find("routines"), nullptr);
  const Result<TuningReport> parsed = report_from_json(json);
  ASSERT_TRUE(parsed.ok()) << parsed.status().message();
  const TuningReport& back = parsed.value();
  ASSERT_TRUE(back.routines_enabled);
  EXPECT_EQ(back.routines.device, "rpi3b");
  EXPECT_EQ(back.routines.total_s, 0.013);
  EXPECT_EQ(back.routines.greedy_s, 0.014);
  ASSERT_EQ(back.routines.ops.size(), 1u);
  EXPECT_EQ(back.routines.ops[0].routine, "blocked_wide");
  EXPECT_EQ(back.routines.ops[0].shape_class, "nt/m512/n64/k512");
}

}  // namespace
}  // namespace edgetune
