// Tests for the TuningJobServer service path (admission control, retention,
// priorities, shared sharded cache, self-tuning parallelism) + new-layer
// gradchecks + CSV export + extended hyperparameter space.
#include <gtest/gtest.h>

#include <chrono>
#include <filesystem>
#include <fstream>
#include <future>
#include <thread>
#include <utility>

#include "common/fault.hpp"
#include "common/thread_pool.hpp"
#include "nn/layers_basic.hpp"
#include "nn/pool.hpp"
#include "tuning/historical_cache.hpp"
#include "tuning/job_server.hpp"
#include "tuning/report_io.hpp"

namespace edgetune {
namespace {

JobRequest small_job(std::uint64_t seed = 77) {
  JobRequest request;
  request.options.workload = WorkloadKind::kNlp;
  request.options.hyperband = {1, 4, 2, 1};
  request.options.runner.proxy_samples = 240;
  request.options.inference.algorithm = "grid";
  request.options.seed = seed;
  return request;
}

JobRequest probe_job(std::string tenant = "", int priority = 0) {
  JobRequest request;
  request.system = JobSystem::kProbe;
  request.tenant = std::move(tenant);
  request.priority = priority;
  return request;
}

/// Polls until every admitted job reached a terminal state. Real sleeps are
/// fine in tests (the lint rule covers src/ only) — this is exactly the
/// cheap O(1) poll unfinished() exists for.
void drain(const TuningJobServer& server) {
  while (server.unfinished() > 0) {
    std::this_thread::sleep_for(std::chrono::milliseconds(1));
  }
}

TEST(JobServerTest, SubmitWaitReturnsReport) {
  TuningJobServer server(1);
  JobId id = server.submit(small_job()).value();
  Result<TuningReport> report = server.wait(id);
  ASSERT_TRUE(report.ok());
  EXPECT_EQ(report.value().system, "edgetune");
  // wait() delivered the result and reaped it: the server retains nothing.
  EXPECT_EQ(server.state(id).status().code(), StatusCode::kNotFound);
  EXPECT_EQ(server.unfinished(), 0u);
  EXPECT_TRUE(server.jobs().empty());
  EXPECT_EQ(server.stats().reaped, 1u);
}

TEST(JobServerTest, MultipleJobsAllComplete) {
  TuningJobServer server(2);
  std::vector<JobId> ids;
  for (int i = 0; i < 4; ++i) {
    ids.push_back(server.submit(small_job(100 + i)).value());
  }
  EXPECT_EQ(server.jobs().size(), 4u);
  for (JobId id : ids) {
    EXPECT_TRUE(server.wait(id).ok());
  }
  EXPECT_TRUE(server.jobs().empty());  // every result delivered and reaped
}

TEST(JobServerTest, FailedJobReportsStatus) {
  TuningJobServer server(1);
  JobRequest bad = small_job();
  bad.options.search_algorithm = "quantum";
  JobId id = server.submit(bad).value();
  Result<TuningReport> report = server.wait(id);
  ASSERT_FALSE(report.ok());
  EXPECT_EQ(server.stats().failed, 1u);
}

TEST(JobServerTest, BaselineSystemsRun) {
  TuningJobServer server(1);
  JobRequest tune = small_job(7);
  tune.system = JobSystem::kTune;
  JobRequest hp = small_job(8);
  hp.system = JobSystem::kHyperPower;
  hp.options.random_trials = 4;
  const JobId tune_id = server.submit(tune).value();
  const JobId hp_id = server.submit(hp).value();
  Result<TuningReport> tune_report = server.wait(tune_id);
  ASSERT_TRUE(tune_report.ok());
  EXPECT_EQ(tune_report.value().system, "tune");
  Result<TuningReport> hp_report = server.wait(hp_id);
  ASSERT_TRUE(hp_report.ok());
  EXPECT_EQ(hp_report.value().system, "hyperpower");
}

TEST(JobServerTest, UnknownIdIsNotFound) {
  TuningJobServer server(1);
  EXPECT_EQ(server.state(42).status().code(), StatusCode::kNotFound);
  EXPECT_EQ(server.info(42).status().code(), StatusCode::kNotFound);
  EXPECT_EQ(server.wait(42).status().code(), StatusCode::kNotFound);
}

// --- Always-on service mode (DESIGN §5.7) ----------------------------------------

TEST(JobServiceTest, ProbeJobRunsThroughTheService) {
  TuningJobServer server(1);
  JobId id = server.submit(probe_job("health")).value();
  Result<TuningReport> report = server.wait(id);
  ASSERT_TRUE(report.ok());
  EXPECT_EQ(report.value().system, "probe");
  EXPECT_TRUE(report.value().trials.empty());
}

TEST(JobServiceTest, WaitReapsAndSecondWaitIsNotFound) {
  TuningJobServer server(1);
  JobId id = server.submit(probe_job()).value();
  ASSERT_TRUE(server.wait(id).ok());
  EXPECT_EQ(server.wait(id).status().code(), StatusCode::kNotFound);
  TuningServiceStats stats = server.stats();
  EXPECT_EQ(stats.reaped, 1u);
  EXPECT_EQ(stats.retained_terminal, 0u);
}

TEST(JobServiceTest, QueueFullIsResourceExhausted) {
  TuningServiceOptions options;
  options.workers = 1;
  options.max_queued = 2;
  TuningJobServer server(options);
  server.pause();  // nothing dequeues: the queue depth is exact
  const JobId a = server.submit(probe_job()).value();
  const JobId b = server.submit(probe_job()).value();
  Result<JobId> rejected = server.submit(probe_job());
  ASSERT_FALSE(rejected.ok());
  EXPECT_EQ(rejected.status().code(), StatusCode::kResourceExhausted);
  TuningServiceStats stats = server.stats();
  EXPECT_EQ(stats.rejected_queue_full, 1u);
  EXPECT_EQ(stats.queued, 2u);
  server.resume();
  EXPECT_TRUE(server.wait(a).ok());
  EXPECT_TRUE(server.wait(b).ok());
}

TEST(JobServiceTest, TenantQuotaIsEnforcedPerTenant) {
  TuningServiceOptions options;
  options.workers = 1;
  options.per_tenant_quota = 2;
  TuningJobServer server(options);
  server.pause();
  const JobId a1 = server.submit(probe_job("alice")).value();
  const JobId a2 = server.submit(probe_job("alice")).value();
  Result<JobId> a3 = server.submit(probe_job("alice"));
  ASSERT_FALSE(a3.ok());
  EXPECT_EQ(a3.status().code(), StatusCode::kResourceExhausted);
  // A full quota for one tenant never blocks another.
  const JobId b1 = server.submit(probe_job("bob")).value();
  TuningServiceStats stats = server.stats();
  EXPECT_EQ(stats.rejected_tenant_quota, 1u);
  server.resume();
  EXPECT_TRUE(server.wait(a1).ok());
  EXPECT_TRUE(server.wait(a2).ok());
  EXPECT_TRUE(server.wait(b1).ok());
  // Quota counts queued + running, so a drained tenant readmits.
  EXPECT_TRUE(server.submit(probe_job("alice")).ok());
}

TEST(JobServiceTest, PriorityOrdersDispatch) {
  TuningServiceOptions options;
  options.workers = 1;
  TuningJobServer server(options);
  server.pause();
  const JobId low1 = server.submit(probe_job("t", 0)).value();
  const JobId low2 = server.submit(probe_job("t", 0)).value();
  const JobId high = server.submit(probe_job("t", 5)).value();
  server.resume();
  drain(server);
  // The late high-priority job overtook both earlier submissions; equal
  // priorities dispatched FIFO.
  EXPECT_EQ(server.info(high).value().finish_seq, 1u);
  EXPECT_EQ(server.info(low1).value().finish_seq, 2u);
  EXPECT_EQ(server.info(low2).value().finish_seq, 3u);
  EXPECT_TRUE(server.wait(low1).ok());
  EXPECT_TRUE(server.wait(low2).ok());
  EXPECT_TRUE(server.wait(high).ok());
}

TEST(JobServiceTest, RetentionPolicyEvictsOldestUnclaimed) {
  TuningServiceOptions options;
  options.workers = 1;
  options.max_retained = 2;
  TuningJobServer server(options);
  std::vector<JobId> ids;
  for (int i = 0; i < 4; ++i) ids.push_back(server.submit(probe_job()).value());
  drain(server);
  TuningServiceStats stats = server.stats();
  EXPECT_EQ(stats.completed, 4u);
  EXPECT_EQ(stats.retained_terminal, 2u);  // memory bounded by the policy
  EXPECT_EQ(stats.evicted, 2u);
  // The two oldest results are gone; the two newest still deliverable.
  EXPECT_EQ(server.state(ids[0]).status().code(), StatusCode::kNotFound);
  EXPECT_EQ(server.wait(ids[1]).status().code(), StatusCode::kNotFound);
  EXPECT_EQ(server.state(ids[2]).value(), JobState::kDone);
  EXPECT_TRUE(server.wait(ids[3]).ok());
}

TEST(JobServiceTest, AdaptiveTrialWorkersFollowQueueDepth) {
  TuningServiceOptions options;
  options.workers = 1;
  options.adaptive_trial_workers = true;
  options.trial_worker_budget = 4;
  TuningJobServer server(options);
  server.pause();
  const JobId first = server.submit(probe_job()).value();
  const JobId second = server.submit(probe_job()).value();
  const JobId third = server.submit(probe_job()).value();
  server.resume();
  drain(server);
  // Dispatch saw queue depths 2, 1, 0: the server narrows jobs while the
  // queue is deep and goes wide once it drains (budget/(1+depth)).
  EXPECT_EQ(server.info(first).value().trial_workers, 1);
  EXPECT_EQ(server.info(second).value().trial_workers, 2);
  EXPECT_EQ(server.info(third).value().trial_workers, 4);
  EXPECT_TRUE(server.wait(first).ok());
  EXPECT_TRUE(server.wait(second).ok());
  EXPECT_TRUE(server.wait(third).ok());
}

TEST(JobServiceTest, AdaptiveNeverOverridesExplicitTrialWorkers) {
  TuningServiceOptions options;
  options.workers = 1;
  options.adaptive_trial_workers = true;
  options.trial_worker_budget = 4;
  TuningJobServer server(options);
  JobRequest request = probe_job();
  request.options.trial_workers = 3;  // the job chose for itself
  JobId id = server.submit(std::move(request)).value();
  drain(server);
  EXPECT_EQ(server.info(id).value().trial_workers, 3);
  EXPECT_TRUE(server.wait(id).ok());
}

TEST(JobServiceTest, SharedCacheReusesResultsAcrossTenants) {
  TuningServiceOptions options;
  options.workers = 1;
  options.shared_cache_shards = 4;
  TuningJobServer server(options);
  ASSERT_NE(server.shared_cache(), nullptr);
  JobRequest first = small_job(7);
  first.tenant = "alice";
  JobId a = server.submit(std::move(first)).value();
  Result<TuningReport> report_a = server.wait(a);
  ASSERT_TRUE(report_a.ok());
  const std::size_t misses_after_first = server.shared_cache()->misses();
  EXPECT_GT(misses_after_first, 0u);
  const std::size_t hits_after_first = server.shared_cache()->hits();
  // Same architectures, different tenant: every inference tune is served
  // from the shared cache — bob never re-pays for what alice tuned.
  JobRequest second = small_job(7);
  second.tenant = "bob";
  JobId b = server.submit(std::move(second)).value();
  Result<TuningReport> report_b = server.wait(b);
  ASSERT_TRUE(report_b.ok());
  EXPECT_EQ(server.shared_cache()->misses(), misses_after_first);
  EXPECT_GT(server.shared_cache()->hits(), hits_after_first);
  EXPECT_EQ(report_a.value().best_config, report_b.value().best_config);
}

TEST(JobServiceTest, ConcurrentWaitersAllSettleAndExactlyOneReap) {
  TuningServiceOptions options;
  options.workers = 1;
  TuningJobServer server(options);
  server.pause();
  const JobId id = server.submit(probe_job()).value();
  ThreadPool waiters(2);
  auto f1 = waiters.submit([&] { return server.wait(id); });
  auto f2 = waiters.submit([&] { return server.wait(id); });
  std::this_thread::sleep_for(std::chrono::milliseconds(50));
  server.resume();
  Result<TuningReport> r1 = f1.get();
  Result<TuningReport> r2 = f2.get();
  // Concurrent waiters registered before delivery all receive the report;
  // a straggler that raced the reap sees not_found. Either way exactly one
  // reap happens and nothing stays retained.
  const int ok_count = (r1.ok() ? 1 : 0) + (r2.ok() ? 1 : 0);
  EXPECT_GE(ok_count, 1);
  TuningServiceStats stats = server.stats();
  EXPECT_EQ(stats.reaped, 1u);
  EXPECT_EQ(stats.retained_terminal, 0u);
}

TEST(JobServiceTest, ConcurrentSubmitStateWaitReapStorm) {
  TuningServiceOptions options;
  options.workers = 2;
  options.max_queued = 32;
  options.max_retained = 8;
  TuningJobServer server(options);
  constexpr int kClients = 4;
  constexpr int kJobsPerClient = 40;
  ThreadPool clients(kClients);
  std::vector<std::future<std::pair<int, int>>> outcomes;
  outcomes.reserve(kClients);
  for (int c = 0; c < kClients; ++c) {
    outcomes.push_back(clients.submit([&server, c] {
      int admitted = 0;
      int delivered = 0;
      std::vector<JobId> mine;
      for (int i = 0; i < kJobsPerClient; ++i) {
        Result<JobId> id = server.submit(
            probe_job("tenant-" + std::to_string(c), i % 3));
        if (!id.ok()) {
          EXPECT_EQ(id.status().code(), StatusCode::kResourceExhausted);
          continue;
        }
        ++admitted;
        mine.push_back(id.value());
        (void)server.state(mine.front());
        (void)server.unfinished();
        if (mine.size() % 2 == 0) {
          Result<TuningReport> report = server.wait(mine.back());
          if (report.ok()) {
            ++delivered;
          } else {
            EXPECT_EQ(report.status().code(), StatusCode::kNotFound);
          }
        }
      }
      for (JobId id : mine) {
        // Ids waited above reap to not_found here; unwaited ids deliver
        // unless the retention ring evicted them first.
        Result<TuningReport> report = server.wait(id);
        if (report.ok()) ++delivered;
      }
      return std::pair<int, int>{admitted, delivered};
    }));
  }
  int admitted = 0;
  int delivered = 0;
  for (auto& f : outcomes) {
    auto [a, d] = f.get();
    admitted += a;
    delivered += d;
  }
  TuningServiceStats stats = server.stats();
  EXPECT_EQ(stats.submitted,
            static_cast<std::size_t>(kClients * kJobsPerClient));
  EXPECT_EQ(stats.submitted,
            stats.rejected_queue_full + stats.rejected_tenant_quota +
                static_cast<std::size_t>(admitted));
  // No job lost: every admitted job reached a terminal state and every
  // terminal result was either delivered through wait() or evicted by the
  // retention ring — never silently dropped, never retained forever.
  EXPECT_EQ(stats.completed, static_cast<std::size_t>(admitted));
  EXPECT_EQ(stats.failed, 0u);
  EXPECT_EQ(stats.reaped, static_cast<std::size_t>(delivered));
  EXPECT_EQ(stats.reaped + stats.evicted, stats.completed);
  EXPECT_EQ(stats.retained_terminal, 0u);
  EXPECT_EQ(server.unfinished(), 0u);
}

// --- Sharded HistoricalCache ------------------------------------------------------

InferenceRecommendation rec_with(double batch) {
  InferenceRecommendation rec;
  rec.config = {{"inf_batch", batch}};
  rec.throughput_sps = batch * 10.0;
  return rec;
}

std::vector<std::string> cache_arch_ids(int n) {
  std::vector<std::string> out;
  out.reserve(static_cast<std::size_t>(n));
  for (int i = 0; i < n; ++i) out.push_back("arch-" + std::to_string(i));
  return out;
}

void remove_cache_files(const std::string& base, std::size_t shards) {
  std::remove(base.c_str());
  std::remove((base + ".corrupt").c_str());
  for (std::size_t i = 0; i < shards; ++i) {
    std::remove(
        (base + ".shard" + std::to_string(i) + "of" + std::to_string(shards))
            .c_str());
  }
}

TEST(ShardedCacheTest, CounterParityWithSingleShard) {
  HistoricalCache single(1);
  HistoricalCache sharded(4);
  EXPECT_EQ(single.shard_count(), 1u);
  EXPECT_EQ(sharded.shard_count(), 4u);
  // Drive both caches with the identical operation stream: counters are a
  // function of the request content, never of the shard layout.
  for (HistoricalCache* cache : {&single, &sharded}) {
    for (const std::string& arch : cache_arch_ids(16)) {
      EXPECT_FALSE(
          cache->lookup(arch, "rpi3b", MetricOfInterest::kEnergy).has_value());
      ASSERT_TRUE(
          cache->store(arch, "rpi3b", MetricOfInterest::kEnergy, rec_with(8))
              .is_ok());
      auto hit = cache->lookup(arch, "rpi3b", MetricOfInterest::kEnergy);
      ASSERT_TRUE(hit.has_value());
      EXPECT_DOUBLE_EQ(hit->throughput_sps, 80.0);
    }
    cache->record_external_hit("arch-3");
  }
  EXPECT_EQ(single.size(), sharded.size());
  EXPECT_EQ(single.hits(), sharded.hits());
  EXPECT_EQ(single.misses(), sharded.misses());
  EXPECT_EQ(sharded.hits(), 17u);
  EXPECT_EQ(sharded.misses(), 16u);
}

TEST(ShardedCacheTest, ShardedPersistenceRoundTrips) {
  const std::string path =
      (std::filesystem::temp_directory_path() / "edgetune_sharded_cache.json")
          .string();
  remove_cache_files(path, 4);
  {
    HistoricalCache cache(path, /*flush_every=*/1, /*shards=*/4);
    for (const std::string& arch : cache_arch_ids(12)) {
      ASSERT_TRUE(
          cache.store(arch, "rpi3b", MetricOfInterest::kEnergy, rec_with(4))
              .is_ok());
    }
  }
  // N > 1 writes only per-shard stripes, never the base file.
  EXPECT_FALSE(std::filesystem::exists(path));
  int shard_files = 0;
  for (std::size_t i = 0; i < 4; ++i) {
    if (std::filesystem::exists(path + ".shard" + std::to_string(i) + "of4")) {
      ++shard_files;
    }
  }
  EXPECT_GE(shard_files, 2);  // stable_hash64 spreads 12 ids over 4 stripes
  {
    HistoricalCache cache(path, /*flush_every=*/16, /*shards=*/4);
    EXPECT_EQ(cache.size(), 12u);
    for (const std::string& arch : cache_arch_ids(12)) {
      EXPECT_TRUE(
          cache.lookup(arch, "rpi3b", MetricOfInterest::kEnergy).has_value());
    }
  }
  remove_cache_files(path, 4);
}

TEST(ShardedCacheTest, LegacySingleFileLoadsIntoShardsReadOnly) {
  const std::string path =
      (std::filesystem::temp_directory_path() / "edgetune_legacy_cache.json")
          .string();
  remove_cache_files(path, 4);
  {
    HistoricalCache cache(path);  // classic single-file layout
    for (const std::string& arch : cache_arch_ids(8)) {
      ASSERT_TRUE(
          cache.store(arch, "rpi3b", MetricOfInterest::kEnergy, rec_with(2))
              .is_ok());
    }
  }
  ASSERT_TRUE(std::filesystem::exists(path));
  const auto legacy_size = std::filesystem::file_size(path);
  {
    HistoricalCache cache(path, /*flush_every=*/16, /*shards=*/4);
    EXPECT_EQ(cache.size(), 8u);  // migrated into the stripes on load
    for (const std::string& arch : cache_arch_ids(8)) {
      EXPECT_TRUE(
          cache.lookup(arch, "rpi3b", MetricOfInterest::kEnergy).has_value());
    }
    ASSERT_TRUE(
        cache.store("arch-new", "rpi3b", MetricOfInterest::kEnergy, rec_with(6))
            .is_ok());
  }
  // Migration is read-only: the legacy file is byte-for-byte untouched, so a
  // pre-shard binary pointed back at it still finds its data.
  EXPECT_EQ(std::filesystem::file_size(path), legacy_size);
  {
    HistoricalCache cache(path, /*flush_every=*/16, /*shards=*/4);
    EXPECT_EQ(cache.size(), 9u);  // legacy entries + the sharded addition
    EXPECT_TRUE(cache.lookup("arch-new", "rpi3b", MetricOfInterest::kEnergy)
                    .has_value());
  }
  remove_cache_files(path, 4);
}

TEST(ShardedCacheTest, PersistFailuresMatchAcrossShardCounts) {
  FaultSpec spec;
  spec.site = fault_site::kCachePersist;
  spec.rate = 1.0;
  spec.code = StatusCode::kIo;
  for (std::size_t shards : {std::size_t{1}, std::size_t{4}}) {
    const std::string path = (std::filesystem::temp_directory_path() /
                              ("edgetune_cache_fail_" +
                               std::to_string(shards) + ".json"))
                                 .string();
    remove_cache_files(path, shards);
    HistoricalCache cache(path, /*flush_every=*/1, shards);
    cache.set_fault_injector(FaultInjector(123, {spec}));
    for (const std::string& arch : cache_arch_ids(6)) {
      // store() still succeeds: persistence failures degrade to memory-only.
      ASSERT_TRUE(
          cache.store(arch, "rpi3b", MetricOfInterest::kEnergy, rec_with(8))
              .is_ok());
      EXPECT_TRUE(
          cache.lookup(arch, "rpi3b", MetricOfInterest::kEnergy).has_value());
    }
    // One failed flush per store at ANY shard count: the fault stream is
    // keyed per shard file and flush index, not by global interleaving.
    EXPECT_EQ(cache.persist_failures(), 6u);
    remove_cache_files(path, shards);
  }
}

TEST(ShardedCacheTest, PersistenceRecoversAfterTransientFailures) {
  const std::string path =
      (std::filesystem::temp_directory_path() / "edgetune_cache_recover.json")
          .string();
  remove_cache_files(path, 1);
  FaultSpec spec;
  spec.site = fault_site::kCachePersist;
  spec.fail_first = 2;
  spec.code = StatusCode::kIo;
  {
    HistoricalCache cache(path, /*flush_every=*/1);
    cache.set_fault_injector(FaultInjector(9, {spec}));
    const std::vector<std::string> arches = cache_arch_ids(3);
    ASSERT_TRUE(cache
                    .store(arches[0], "rpi3b", MetricOfInterest::kEnergy,
                           rec_with(1))
                    .is_ok());
    ASSERT_TRUE(cache
                    .store(arches[1], "rpi3b", MetricOfInterest::kEnergy,
                           rec_with(2))
                    .is_ok());
    EXPECT_EQ(cache.persist_failures(), 2u);
    // Third flush succeeds: the cache logs the recovery, re-arms the warn
    // latch, and the file now holds everything that failed to flush before.
    ASSERT_TRUE(cache
                    .store(arches[2], "rpi3b", MetricOfInterest::kEnergy,
                           rec_with(3))
                    .is_ok());
    EXPECT_EQ(cache.persist_failures(), 2u);
  }
  {
    HistoricalCache reread(path);
    EXPECT_EQ(reread.size(), 3u);
  }
  remove_cache_files(path, 1);
}

// --- New layers ------------------------------------------------------------------

TEST(NewLayersTest, LeakyReluForwardAndSlope) {
  LeakyReLU layer(0.1f);
  Tensor x({4}, std::vector<float>{-2, -0.5f, 0.5f, 2});
  Tensor out = layer.forward(x, true);
  EXPECT_FLOAT_EQ(out[0], -0.2f);
  EXPECT_FLOAT_EQ(out[2], 0.5f);
  Tensor grad = layer.backward(Tensor::ones({4}));
  EXPECT_FLOAT_EQ(grad[0], 0.1f);
  EXPECT_FLOAT_EQ(grad[3], 1.0f);
}

TEST(NewLayersTest, SigmoidRangeAndGrad) {
  Sigmoid layer;
  Rng rng(1);
  Tensor x = Tensor::randn({64}, rng, 0, 3);
  Tensor out = layer.forward(x, true);
  for (std::int64_t i = 0; i < out.numel(); ++i) {
    EXPECT_GT(out[i], 0.0f);
    EXPECT_LT(out[i], 1.0f);
  }
  // Numeric grad check on a few elements.
  Tensor w = Tensor::ones(x.shape());
  layer.forward(x, true);
  Tensor grad = layer.backward(w);
  const float eps = 1e-3f;
  for (std::int64_t i = 0; i < 8; ++i) {
    Tensor xp = x, xm = x;
    xp[i] += eps;
    xm[i] -= eps;
    const double numeric =
        (layer.forward(xp, true).sum() - layer.forward(xm, true).sum()) /
        (2 * eps);
    EXPECT_NEAR(grad[i], numeric, 2e-2);
  }
}

TEST(NewLayersTest, AvgPool2dForwardBackward) {
  AvgPool2D layer(2, 2);
  Tensor x({1, 1, 2, 2}, std::vector<float>{1, 2, 3, 4});
  Tensor out = layer.forward(x, true);
  ASSERT_EQ(out.numel(), 1);
  EXPECT_FLOAT_EQ(out[0], 2.5f);
  Tensor grad = layer.backward(Tensor({1, 1, 1, 1}, {4.0f}));
  for (std::int64_t i = 0; i < 4; ++i) EXPECT_FLOAT_EQ(grad[i], 1.0f);
}

TEST(NewLayersTest, AvgPool2dDescribeMatchesForward) {
  AvgPool2D layer(2, 2);
  Rng rng(2);
  Tensor x = Tensor::randn({2, 3, 6, 6}, rng);
  Tensor out = layer.forward(x, false);
  EXPECT_EQ(layer.describe({2, 3, 6, 6}).output_shape, out.shape());
}

// --- CSV export -------------------------------------------------------------------

TEST(CsvExportTest, TrialLogRoundsTrip) {
  const std::string path =
      (std::filesystem::temp_directory_path() / "edgetune_trials.csv")
          .string();
  std::remove(path.c_str());
  TuningReport report;
  TrialLog t;
  t.id = 0;
  t.config = {{"lr", 0.05}, {"model_hparam", 18}};
  t.resource = 2;
  t.budget = {2, 0.2};
  t.accuracy = 0.5;
  t.duration_s = 12;
  t.energy_j = 340;
  t.objective = 24;
  report.trials.push_back(t);
  t.id = 1;
  t.config = {{"lr", 0.01}, {"model_hparam", 34}, {"num_gpus", 4}};
  report.trials.push_back(t);
  ASSERT_TRUE(save_trials_csv(report, path).is_ok());

  std::ifstream in(path);
  std::string header, row0, row1;
  std::getline(in, header);
  std::getline(in, row0);
  std::getline(in, row1);
  EXPECT_NE(header.find("accuracy"), std::string::npos);
  EXPECT_NE(header.find("lr"), std::string::npos);
  EXPECT_NE(header.find("num_gpus"), std::string::npos);  // union of keys
  EXPECT_EQ(row0.back(), ',');  // trial 0 lacks num_gpus -> empty last cell
  EXPECT_NE(row1.find("34"), std::string::npos);
  std::remove(path.c_str());
}

// --- Extended hyperparameter space ---------------------------------------------------

TEST(ExtendedHparamsTest, SpaceGainsMomentumAndWeightDecay) {
  EdgeTuneOptions options;
  options.workload = WorkloadKind::kNlp;
  options.tune_extended_hparams = true;
  EdgeTune tuner(options);
  SearchSpace space = tuner.model_search_space();
  EXPECT_NE(space.find("momentum"), nullptr);
  EXPECT_NE(space.find("weight_decay"), nullptr);

  options.tune_extended_hparams = false;
  EdgeTune plain(options);
  EXPECT_EQ(plain.model_search_space().find("momentum"), nullptr);
}

TEST(ExtendedHparamsTest, TrialRunnerHonorsThem) {
  TrialRunnerOptions runner_options;
  runner_options.workload = WorkloadKind::kNlp;
  runner_options.proxy_samples = 240;
  runner_options.seed = 5;
  TrialRunner runner(runner_options);
  Config config = {{"model_hparam", 2}, {"train_batch", 64}, {"lr", 0.05},
                   {"momentum", 0.0},  {"weight_decay", 0.005}};
  Result<TrialOutcome> outcome = runner.run(config, {3, 1.0});
  ASSERT_TRUE(outcome.ok());
  EXPECT_GE(outcome.value().accuracy, 0.0);
}

}  // namespace
}  // namespace edgetune
