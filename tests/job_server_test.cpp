// Tests for the TuningJobServer + new-layer gradchecks + CSV export +
// extended hyperparameter space.
#include <gtest/gtest.h>

#include <filesystem>
#include <fstream>

#include "nn/layers_basic.hpp"
#include "nn/pool.hpp"
#include "tuning/job_server.hpp"
#include "tuning/report_io.hpp"

namespace edgetune {
namespace {

JobRequest small_job(std::uint64_t seed = 77) {
  JobRequest request;
  request.options.workload = WorkloadKind::kNlp;
  request.options.hyperband = {1, 4, 2, 1};
  request.options.runner.proxy_samples = 240;
  request.options.inference.algorithm = "grid";
  request.options.seed = seed;
  return request;
}

TEST(JobServerTest, SubmitWaitReturnsReport) {
  TuningJobServer server(1);
  JobId id = server.submit(small_job());
  Result<TuningReport> report = server.wait(id);
  ASSERT_TRUE(report.ok());
  EXPECT_EQ(report.value().system, "edgetune");
  EXPECT_EQ(server.state(id).value(), JobState::kDone);
  EXPECT_EQ(server.unfinished(), 0u);
}

TEST(JobServerTest, MultipleJobsAllComplete) {
  TuningJobServer server(2);
  std::vector<JobId> ids;
  for (int i = 0; i < 4; ++i) {
    ids.push_back(server.submit(small_job(100 + i)));
  }
  EXPECT_EQ(server.jobs().size(), 4u);
  for (JobId id : ids) {
    EXPECT_TRUE(server.wait(id).ok());
  }
}

TEST(JobServerTest, FailedJobReportsStatus) {
  TuningJobServer server(1);
  JobRequest bad = small_job();
  bad.options.search_algorithm = "quantum";
  JobId id = server.submit(bad);
  Result<TuningReport> report = server.wait(id);
  ASSERT_FALSE(report.ok());
  EXPECT_EQ(server.state(id).value(), JobState::kFailed);
}

TEST(JobServerTest, BaselineSystemsRun) {
  TuningJobServer server(1);
  JobRequest tune = small_job(7);
  tune.system = JobSystem::kTune;
  JobRequest hp = small_job(8);
  hp.system = JobSystem::kHyperPower;
  hp.options.random_trials = 4;
  const JobId tune_id = server.submit(tune);
  const JobId hp_id = server.submit(hp);
  ASSERT_TRUE(server.wait(tune_id).ok());
  EXPECT_EQ(server.wait(tune_id).value().system, "tune");
  ASSERT_TRUE(server.wait(hp_id).ok());
  EXPECT_EQ(server.wait(hp_id).value().system, "hyperpower");
}

TEST(JobServerTest, UnknownIdIsNotFound) {
  TuningJobServer server(1);
  EXPECT_EQ(server.state(42).status().code(), StatusCode::kNotFound);
  EXPECT_EQ(server.wait(42).status().code(), StatusCode::kNotFound);
}

// --- New layers ------------------------------------------------------------------

TEST(NewLayersTest, LeakyReluForwardAndSlope) {
  LeakyReLU layer(0.1f);
  Tensor x({4}, std::vector<float>{-2, -0.5f, 0.5f, 2});
  Tensor out = layer.forward(x, true);
  EXPECT_FLOAT_EQ(out[0], -0.2f);
  EXPECT_FLOAT_EQ(out[2], 0.5f);
  Tensor grad = layer.backward(Tensor::ones({4}));
  EXPECT_FLOAT_EQ(grad[0], 0.1f);
  EXPECT_FLOAT_EQ(grad[3], 1.0f);
}

TEST(NewLayersTest, SigmoidRangeAndGrad) {
  Sigmoid layer;
  Rng rng(1);
  Tensor x = Tensor::randn({64}, rng, 0, 3);
  Tensor out = layer.forward(x, true);
  for (std::int64_t i = 0; i < out.numel(); ++i) {
    EXPECT_GT(out[i], 0.0f);
    EXPECT_LT(out[i], 1.0f);
  }
  // Numeric grad check on a few elements.
  Tensor w = Tensor::ones(x.shape());
  layer.forward(x, true);
  Tensor grad = layer.backward(w);
  const float eps = 1e-3f;
  for (std::int64_t i = 0; i < 8; ++i) {
    Tensor xp = x, xm = x;
    xp[i] += eps;
    xm[i] -= eps;
    const double numeric =
        (layer.forward(xp, true).sum() - layer.forward(xm, true).sum()) /
        (2 * eps);
    EXPECT_NEAR(grad[i], numeric, 2e-2);
  }
}

TEST(NewLayersTest, AvgPool2dForwardBackward) {
  AvgPool2D layer(2, 2);
  Tensor x({1, 1, 2, 2}, std::vector<float>{1, 2, 3, 4});
  Tensor out = layer.forward(x, true);
  ASSERT_EQ(out.numel(), 1);
  EXPECT_FLOAT_EQ(out[0], 2.5f);
  Tensor grad = layer.backward(Tensor({1, 1, 1, 1}, {4.0f}));
  for (std::int64_t i = 0; i < 4; ++i) EXPECT_FLOAT_EQ(grad[i], 1.0f);
}

TEST(NewLayersTest, AvgPool2dDescribeMatchesForward) {
  AvgPool2D layer(2, 2);
  Rng rng(2);
  Tensor x = Tensor::randn({2, 3, 6, 6}, rng);
  Tensor out = layer.forward(x, false);
  EXPECT_EQ(layer.describe({2, 3, 6, 6}).output_shape, out.shape());
}

// --- CSV export -------------------------------------------------------------------

TEST(CsvExportTest, TrialLogRoundsTrip) {
  const std::string path =
      (std::filesystem::temp_directory_path() / "edgetune_trials.csv")
          .string();
  std::remove(path.c_str());
  TuningReport report;
  TrialLog t;
  t.id = 0;
  t.config = {{"lr", 0.05}, {"model_hparam", 18}};
  t.resource = 2;
  t.budget = {2, 0.2};
  t.accuracy = 0.5;
  t.duration_s = 12;
  t.energy_j = 340;
  t.objective = 24;
  report.trials.push_back(t);
  t.id = 1;
  t.config = {{"lr", 0.01}, {"model_hparam", 34}, {"num_gpus", 4}};
  report.trials.push_back(t);
  ASSERT_TRUE(save_trials_csv(report, path).is_ok());

  std::ifstream in(path);
  std::string header, row0, row1;
  std::getline(in, header);
  std::getline(in, row0);
  std::getline(in, row1);
  EXPECT_NE(header.find("accuracy"), std::string::npos);
  EXPECT_NE(header.find("lr"), std::string::npos);
  EXPECT_NE(header.find("num_gpus"), std::string::npos);  // union of keys
  EXPECT_EQ(row0.back(), ',');  // trial 0 lacks num_gpus -> empty last cell
  EXPECT_NE(row1.find("34"), std::string::npos);
  std::remove(path.c_str());
}

// --- Extended hyperparameter space ---------------------------------------------------

TEST(ExtendedHparamsTest, SpaceGainsMomentumAndWeightDecay) {
  EdgeTuneOptions options;
  options.workload = WorkloadKind::kNlp;
  options.tune_extended_hparams = true;
  EdgeTune tuner(options);
  SearchSpace space = tuner.model_search_space();
  EXPECT_NE(space.find("momentum"), nullptr);
  EXPECT_NE(space.find("weight_decay"), nullptr);

  options.tune_extended_hparams = false;
  EdgeTune plain(options);
  EXPECT_EQ(plain.model_search_space().find("momentum"), nullptr);
}

TEST(ExtendedHparamsTest, TrialRunnerHonorsThem) {
  TrialRunnerOptions runner_options;
  runner_options.workload = WorkloadKind::kNlp;
  runner_options.proxy_samples = 240;
  runner_options.seed = 5;
  TrialRunner runner(runner_options);
  Config config = {{"model_hparam", 2}, {"train_batch", 64}, {"lr", 0.05},
                   {"momentum", 0.0},  {"weight_decay", 0.005}};
  Result<TrialOutcome> outcome = runner.run(config, {3, 1.0});
  ASSERT_TRUE(outcome.ok());
  EXPECT_GE(outcome.value().accuracy, 0.0);
}

}  // namespace
}  // namespace edgetune
