// Fixture: same call, suppressed with an explanatory NOLINT.
#include <cstdlib>

int roll() {
  return std::rand() % 6;  // NOLINT(rng-determinism): fixture exercises escape
}
