// Fixture: suppressed raw thread. hardware_concurrency is always allowed.
#include <thread>

unsigned probe() { return std::thread::hardware_concurrency(); }

void fire_and_forget() {
  std::thread worker([] {});  // NOLINT(thread-outside-pool): fixture escape
  worker.join();
}
