// Fixture: lives under a src/ segment, so real-sleep-in-lib must flag the
// sleep_for call (library waiting is simulated time, DESIGN §5.4).
#include <chrono>
#include <thread>

void nap() { std::this_thread::sleep_for(std::chrono::milliseconds(5)); }
