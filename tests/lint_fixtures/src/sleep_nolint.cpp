// Fixture: suppressed real sleep under src/.
#include <chrono>
#include <thread>

void nap() {
  std::this_thread::sleep_for(  // NOLINT(real-sleep-in-lib): fixture escape
      std::chrono::milliseconds(5));
}
