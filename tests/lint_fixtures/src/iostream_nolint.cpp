// Fixture: suppressed include under src/.
#include <iostream>  // NOLINT(iostream-in-lib): fixture exercises escape

void shout() { std::cout << "hi\n"; }
