// Fixture: lives under a src/ segment, so iostream-in-lib must flag line 3.
#include <iostream>

void shout() { std::cout << "hi\n"; }
