// Fixture: seeds from std::rand — rng-determinism must flag line 5.
#include <cstdlib>

int roll() {
  return std::rand() % 6;
}
