// Fixture: the same upward include, waived with a justified NOLINT.
#pragma once

#include "device/cost_model.hpp"  // NOLINT(layer-order): fixture waiver
