// Hand-rolled write-temp-then-swap persistence: atomic against reader
// crashes but not writer crashes (no fsync before the rename) — the
// pattern durable_write_file exists to replace.
#include <cstdio>
#include <fstream>
#include <string>

bool save_table(const std::string& path, const std::string& text) {
  const std::string tmp = path + ".tmp";
  std::ofstream out(tmp);
  out << text;
  out.close();
  return std::rename(tmp.c_str(), path.c_str()) == 0;
}
