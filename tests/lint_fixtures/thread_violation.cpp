// Fixture: raw thread construction — thread-outside-pool must flag line 6.
#include <thread>

void fire_and_forget() {
  std::thread worker([] {});
  worker.join();
}
