// Fixture: ...while this TU acquires the same pair in the OPPOSITE order —
// a classic cross-TU AB/BA deadlock no single-file analysis can see.
namespace fixture {

void transfer_b_to_a() {
  MutexLock guard_b(mu_account_b);
  MutexLock guard_a(mu_account_a);
}

}  // namespace fixture
