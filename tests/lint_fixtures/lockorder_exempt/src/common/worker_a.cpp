// Fixture: this TU acquires mu_account_a then mu_account_b...
namespace fixture {

void transfer_a_to_b() {
  MutexLock guard_a(mu_account_a);
  MutexLock guard_b(mu_account_b);
}

}  // namespace fixture
