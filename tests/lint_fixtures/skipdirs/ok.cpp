// Fixture: the sibling build/, build-debug/ and .hidden/ directories each
// contain a violation, but scan_path must never descend into them.
int fixture_ok();
