// Fixture: a violation inside a skipped directory — must never be reported.
int entropy() { return std::rand(); }
