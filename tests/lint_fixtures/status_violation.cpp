// Fixture: a Status-returning call discarded as a bare expression
// statement — the error is silently dropped.
Status save_report(const char* path);

void caller() {
  save_report("out.json");
}
