// Fixture: the back edge closing the include cycle.
#pragma once

#include "common/event_a.hpp"
