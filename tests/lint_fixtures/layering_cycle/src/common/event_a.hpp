// Fixture: mutual includes — a file-level cycle inside a single layer,
// which the layer table alone cannot catch.
#pragma once

#include "common/event_b.hpp"
