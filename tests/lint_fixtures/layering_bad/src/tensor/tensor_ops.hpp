// Fixture: a tensor-layer header reaching UP into device/ (level 3 > 1).
#pragma once

#include "device/cost_model.hpp"
