// Fixture: annotated sibling satisfies the rule; second mutex is NOLINTed.
#pragma once
#include <mutex>

#define EDGETUNE_GUARDED_BY(x)

class Counter {
 public:
  void bump();

 private:
  mutable std::mutex mutex_;
  int count_ EDGETUNE_GUARDED_BY(mutex_) = 0;
  std::mutex io_mutex_;  // NOLINT(guarded-by): guards stderr, not a member
};
