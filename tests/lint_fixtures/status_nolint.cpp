// Fixture: the same discard, waived with a justified NOLINT.
Status save_report(const char* path);

void caller() {
  save_report("out.json");  // NOLINT(unchecked-status): fire-and-forget fixture
}
