// Same TU-level ofstream + rename() pattern, escaped with a justified
// NOLINT at the rename (the swap site the rule anchors on).
#include <cstdio>
#include <fstream>
#include <string>

bool save_scratch(const std::string& path, const std::string& text) {
  const std::string tmp = path + ".tmp";
  std::ofstream out(tmp);
  out << text;
  out.close();
  return std::rename(tmp.c_str(), path.c_str()) == 0;  // NOLINT(raw-persistence) scratch file, torn content acceptable
}
