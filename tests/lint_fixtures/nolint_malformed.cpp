// Fixture: a NOLINT marker missing its ')' is itself a finding and must
// NOT waive the rule it names — both findings are expected here.
int entropy() { return std::rand(); }  // NOLINT(rng-determinism
