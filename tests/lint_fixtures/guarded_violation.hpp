// Fixture: mutex member with no EDGETUNE_GUARDED_BY user — guarded-by must
// flag the declaration line.
#pragma once
#include <mutex>

class Counter {
 public:
  void bump();

 private:
  mutable std::mutex mutex_;
  int count_ = 0;
};
