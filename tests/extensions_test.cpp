// Tests for the extension features: AlexNet builder, weight checkpointing,
// Pareto front, multi-device recommendations, JSON device profiles.
#include <gtest/gtest.h>

#include <cstdio>
#include <filesystem>

#include "device/profile_io.hpp"
#include "models/models.hpp"
#include "nn/loss.hpp"
#include "nn/optimizer.hpp"
#include "nn/serialize.hpp"
#include "tuning/finalize.hpp"
#include "tuning/model_server.hpp"
#include "tuning/pareto.hpp"

namespace edgetune {
namespace {

std::string temp_path(const char* name) {
  return (std::filesystem::temp_directory_path() / name).string();
}

// --- AlexNet -------------------------------------------------------------------

TEST(AlexNetTest, BuildsAndClassifies) {
  Rng rng(1);
  Result<BuiltModel> built = build_alexnet({.num_classes = 10}, rng);
  ASSERT_TRUE(built.ok());
  Tensor x = Tensor::randn({2, 3, 8, 8}, rng);
  Tensor out = built.value().net->forward(x, false);
  EXPECT_EQ(out.shape(), (Shape{2, 10}));
  EXPECT_FALSE(build_alexnet({.num_classes = 1}, rng).ok());
}

TEST(AlexNetTest, FullScaleArchIsDenseHeavy) {
  Rng rng(2);
  BuiltModel model = build_alexnet({.num_classes = 10}, rng).value();
  // AlexNet's signature: the dense head dominates the parameter count.
  double dense_params = 0;
  for (const LayerInfo& layer : model.arch.layers) {
    if (layer.kind == "linear") dense_params += layer.param_count;
  }
  EXPECT_GT(dense_params, 0.5 * model.arch.params);
  EXPECT_GT(model.arch.params, 1e7);  // tens of millions of parameters
}

TEST(AlexNetTest, ProxyTrainsOnSynthImages) {
  Rng rng(3);
  BuiltModel model = build_alexnet({.num_classes = 10}, rng).value();
  auto data = make_workload_data(WorkloadKind::kImageClassification, 400, 3);
  SgdOptimizer opt(model.net->params(), {.learning_rate = 0.02});
  BatchIterator iter(DatasetView::all(*data), 16, rng);
  double first = 0, last = 0;
  for (int epoch = 0; epoch < 4; ++epoch) {
    iter.begin_epoch();
    double sum = 0;
    int steps = 0;
    for (Batch b = iter.next(); b.size() > 0; b = iter.next()) {
      Tensor logits = model.net->forward(b.inputs, true);
      LossResult loss = softmax_cross_entropy(logits, b.labels);
      model.net->backward(loss.grad);
      opt.step();
      sum += loss.loss;
      ++steps;
    }
    if (epoch == 0) first = sum / steps;
    last = sum / steps;
  }
  EXPECT_LT(last, first);
}

// --- Weight checkpointing --------------------------------------------------------

TEST(SerializeTest, RoundTripPreservesWeightsAndOutputs) {
  const std::string path = temp_path("edgetune_ckpt_test.bin");
  std::remove(path.c_str());
  Rng rng(4);
  BuiltModel model = build_resnet({.depth = 18}, rng).value();
  Tensor x = Tensor::randn({2, 3, 8, 8}, rng);
  Tensor before = model.net->forward(x, false);
  ASSERT_TRUE(save_weights(*model.net, path).is_ok());

  // A freshly initialized model differs; after loading it matches exactly.
  Rng rng2(99);
  BuiltModel fresh = build_resnet({.depth = 18}, rng2).value();
  Tensor fresh_out = fresh.net->forward(x, false);
  bool differs = false;
  for (std::int64_t i = 0; i < before.numel(); ++i) {
    if (before[i] != fresh_out[i]) differs = true;
  }
  EXPECT_TRUE(differs);

  ASSERT_TRUE(load_weights(*fresh.net, path).is_ok());
  Tensor after = fresh.net->forward(x, false);
  for (std::int64_t i = 0; i < before.numel(); ++i) {
    EXPECT_FLOAT_EQ(after[i], before[i]);
  }
  std::remove(path.c_str());
}

TEST(SerializeTest, ArchitectureMismatchIsRejected) {
  const std::string path = temp_path("edgetune_ckpt_mismatch.bin");
  std::remove(path.c_str());
  Rng rng(5);
  BuiltModel small = build_resnet({.depth = 18}, rng).value();
  ASSERT_TRUE(save_weights(*small.net, path).is_ok());
  BuiltModel big = build_resnet({.depth = 34}, rng).value();
  Status status = load_weights(*big.net, path);
  EXPECT_FALSE(status.is_ok());
  EXPECT_EQ(status.code(), StatusCode::kFailedPrecondition);
  std::remove(path.c_str());
}

TEST(SerializeTest, GarbageFileIsRejected) {
  const std::string path = temp_path("edgetune_ckpt_garbage.bin");
  {
    std::FILE* f = std::fopen(path.c_str(), "wb");
    std::fputs("definitely not a checkpoint", f);
    std::fclose(f);
  }
  Rng rng(6);
  BuiltModel model = build_text_rnn({.stride = 1}, rng).value();
  EXPECT_FALSE(load_weights(*model.net, path).is_ok());
  std::remove(path.c_str());
}

TEST(SerializeTest, MissingFileIsNotFound) {
  Rng rng(7);
  BuiltModel model = build_text_rnn({.stride = 1}, rng).value();
  EXPECT_EQ(load_weights(*model.net, "/nonexistent/ckpt.bin").code(),
            StatusCode::kNotFound);
}

// --- Pareto front -----------------------------------------------------------------

TrialLog make_trial(int id, double acc, double dur, double energy) {
  TrialLog t;
  t.id = id;
  t.accuracy = acc;
  t.duration_s = dur;
  t.energy_j = energy;
  t.objective = dur / acc;
  return t;
}

TEST(ParetoTest, DominationRules) {
  TrialLog better = make_trial(0, 0.9, 10, 100);
  TrialLog worse = make_trial(1, 0.8, 20, 200);
  TrialLog mixed = make_trial(2, 0.95, 30, 100);
  EXPECT_TRUE(dominates(better, worse));
  EXPECT_FALSE(dominates(worse, better));
  EXPECT_FALSE(dominates(better, mixed));  // mixed is more accurate
  EXPECT_FALSE(dominates(mixed, better));  // better is faster
  EXPECT_FALSE(dominates(better, better));  // not strictly better
}

TEST(ParetoTest, FrontExcludesDominated) {
  std::vector<TrialLog> trials = {
      make_trial(0, 0.9, 10, 100),   // front
      make_trial(1, 0.8, 20, 200),   // dominated by 0
      make_trial(2, 0.95, 30, 100),  // front (most accurate)
      make_trial(3, 0.5, 5, 50),     // front (cheapest)
      make_trial(4, 0.5, 6, 60),     // dominated by 3
  };
  std::vector<TrialLog> front = pareto_front(trials);
  ASSERT_EQ(front.size(), 3u);
  EXPECT_EQ(front[0].id, 0);
  EXPECT_EQ(front[1].id, 2);
  EXPECT_EQ(front[2].id, 3);
}

TEST(ParetoTest, InfiniteObjectivesExcluded) {
  std::vector<TrialLog> trials = {make_trial(0, 0.9, 10, 100)};
  trials.push_back(make_trial(1, 0.99, 1, 1));
  trials[1].objective = std::numeric_limits<double>::infinity();
  std::vector<TrialLog> front = pareto_front(trials);
  ASSERT_EQ(front.size(), 1u);
  EXPECT_EQ(front[0].id, 0);
}

TEST(ParetoTest, RealTuningRunHasNonTrivialFront) {
  EdgeTuneOptions options;
  options.workload = WorkloadKind::kNlp;
  options.hyperband = {1, 4, 2, 1};
  options.runner.proxy_samples = 300;
  options.inference.algorithm = "grid";
  options.seed = 5;
  TuningReport report = EdgeTune(options).run().value();
  std::vector<TrialLog> front = pareto_front(report.trials);
  EXPECT_GE(front.size(), 1u);
  EXPECT_LE(front.size(), report.trials.size());
  // No front member dominates another.
  for (const TrialLog& a : front) {
    for (const TrialLog& b : front) {
      EXPECT_FALSE(dominates(a, b) && a.id != b.id);
    }
  }
}

// --- Multi-device recommendations --------------------------------------------------

TEST(MultiDeviceTest, ExtraDevicesGetRecommendations) {
  EdgeTuneOptions options;
  options.workload = WorkloadKind::kNlp;
  options.hyperband = {1, 4, 2, 1};
  options.runner.proxy_samples = 300;
  options.inference.algorithm = "grid";
  options.edge_device = device_rpi3b();
  options.extra_edge_devices = {device_armv7(), device_i7_7567u()};
  options.seed = 6;
  TuningReport report = EdgeTune(options).run().value();
  ASSERT_EQ(report.per_device.size(), 2u);
  ASSERT_TRUE(report.per_device.count("armv7"));
  ASSERT_TRUE(report.per_device.count("i7"));
  // The i7 is the much faster device; its recommended deployment must beat
  // the ARM board's.
  EXPECT_GT(report.per_device.at("i7").throughput_sps,
            report.per_device.at("armv7").throughput_sps);
  for (const auto& [name, rec] : report.per_device) {
    EXPECT_GT(rec.throughput_sps, 0) << name;
  }
}

// --- Finalization ---------------------------------------------------------------------

TEST(FinalizeTest, RetrainsAndCheckpointsWinner) {
  const std::string path = temp_path("edgetune_final_ckpt.etw");
  std::remove(path.c_str());
  EdgeTuneOptions options;
  options.workload = WorkloadKind::kNlp;
  options.hyperband = {1, 4, 2, 1};
  options.runner.proxy_samples = 400;
  options.inference.algorithm = "grid";
  options.seed = 9;
  TuningReport report = EdgeTune(options).run().value();

  FinalizeOptions finalize;
  finalize.epochs = 6;
  finalize.checkpoint_path = path;
  Result<FinalizedModel> final_model =
      finalize_best_model(options, report, finalize);
  ASSERT_TRUE(final_model.ok()) << final_model.status().to_string();
  EXPECT_GT(final_model.value().accuracy, 0.3);  // above 4-class chance
  EXPECT_GT(final_model.value().train_time_s, 0);
  EXPECT_EQ(final_model.value().checkpoint_path, path);

  // The checkpoint loads into a fresh same-architecture model.
  Rng rng(123);
  BuiltModel fresh =
      build_workload_model(options.workload,
                           report.best_config.at("model_hparam"), rng)
          .value();
  EXPECT_TRUE(load_weights(*fresh.net, path).is_ok());
  std::remove(path.c_str());
}

TEST(FinalizeTest, EmptyReportIsError) {
  EdgeTuneOptions options;
  TuningReport report;  // no best_config
  EXPECT_FALSE(finalize_best_model(options, report, {}).ok());
}

// --- Device profile JSON -------------------------------------------------------------

TEST(ProfileIoTest, RoundTrip) {
  DeviceProfile original = device_titan_server();
  Result<DeviceProfile> restored =
      profile_from_json(profile_to_json(original));
  ASSERT_TRUE(restored.ok());
  const DeviceProfile& p = restored.value();
  EXPECT_EQ(p.name, original.name);
  EXPECT_EQ(p.max_cores, original.max_cores);
  EXPECT_DOUBLE_EQ(p.mem_bandwidth_gbs, original.mem_bandwidth_gbs);
  EXPECT_EQ(p.freq_levels_ghz, original.freq_levels_ghz);
  EXPECT_EQ(p.num_gpus, original.num_gpus);
  EXPECT_DOUBLE_EQ(p.gpu_tflops, original.gpu_tflops);
}

TEST(ProfileIoTest, UnknownKeyIsError) {
  Result<Json> json =
      Json::parse("{\"name\": \"x\", \"mem_bandwith_gbs\": 4}");  // typo
  ASSERT_TRUE(json.ok());
  Result<DeviceProfile> profile = profile_from_json(json.value());
  ASSERT_FALSE(profile.ok());
  EXPECT_NE(profile.status().message().find("mem_bandwith_gbs"),
            std::string::npos);
}

TEST(ProfileIoTest, MissingNameIsError) {
  Result<Json> json = Json::parse("{\"max_cores\": 4}");
  ASSERT_TRUE(json.ok());
  EXPECT_FALSE(profile_from_json(json.value()).ok());
}

TEST(ProfileIoTest, DefaultsFillMissingFields) {
  Result<Json> json = Json::parse("{\"name\": \"custom\", \"max_cores\": 2}");
  ASSERT_TRUE(json.ok());
  Result<DeviceProfile> profile = profile_from_json(json.value());
  ASSERT_TRUE(profile.ok());
  EXPECT_EQ(profile.value().max_cores, 2);
  EXPECT_GT(profile.value().mem_bandwidth_gbs, 0);  // documented default
  EXPECT_FALSE(profile.value().freq_levels_ghz.empty());
}

TEST(ProfileIoTest, FileRoundTripAndUseInCostModel) {
  const std::string path = temp_path("edgetune_device_test.json");
  std::remove(path.c_str());
  DeviceProfile original = device_armv7();
  original.name = "my_board";
  ASSERT_TRUE(save_device_profile(original, path).is_ok());
  Result<DeviceProfile> loaded = load_device_profile(path);
  ASSERT_TRUE(loaded.ok());
  EXPECT_EQ(loaded.value().name, "my_board");
  // The loaded profile drives the cost model identically to the original.
  Rng rng(8);
  ArchSpec arch = build_resnet({.depth = 18}, rng).value().arch;
  CostModel a(original), b(loaded.value());
  EXPECT_DOUBLE_EQ(
      a.inference_cost(arch, {.batch_size = 4, .cores = 2}).value().latency_s,
      b.inference_cost(arch, {.batch_size = 4, .cores = 2})
          .value()
          .latency_s);
  std::remove(path.c_str());
}

TEST(ProfileIoTest, NonPositiveValuesRejected) {
  Result<Json> json =
      Json::parse("{\"name\": \"bad\", \"mem_bandwidth_gbs\": -1}");
  ASSERT_TRUE(json.ok());
  EXPECT_FALSE(profile_from_json(json.value()).ok());
}

}  // namespace
}  // namespace edgetune
