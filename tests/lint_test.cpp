// Drives the edgetune_lint binary over the fixture snippets in
// tests/lint_fixtures/ — one violating and one NOLINT-suppressed case per
// rule — and asserts the real tree lints clean (the same invocation the CI
// lint job runs).
//
// The thread-safety side of this PR's static layer is compile-time only and
// clang-only, so it cannot be exercised from a gtest binary: CI's
// clang-thread-safety job builds with -Werror=thread-safety and then
// deliberately strips one EDGETUNE_REQUIRES (save_locked's, in
// historical_cache.hpp) and asserts the rebuild FAILS — the negative test
// the acceptance criteria ask for lives there (.github/workflows/ci.yml).

#include <gtest/gtest.h>

#include <cstdlib>
#include <fstream>
#include <sstream>
#include <string>

namespace {

#ifndef EDGETUNE_LINT_BIN
#error "CMake must define EDGETUNE_LINT_BIN (path to the lint binary)"
#endif
#ifndef EDGETUNE_SOURCE_DIR
#error "CMake must define EDGETUNE_SOURCE_DIR (repo root)"
#endif

const std::string kLintBin = EDGETUNE_LINT_BIN;
const std::string kSourceDir = EDGETUNE_SOURCE_DIR;
const std::string kFixtures = kSourceDir + "/tests/lint_fixtures";

struct LintRun {
  int exit_code = -1;
  std::string output;
};

/// Runs `edgetune_lint <args>`, capturing stderr (findings) + exit code.
LintRun run_lint(const std::string& args) {
  const std::string capture = ::testing::TempDir() + "/lint_capture.txt";
  const std::string command =
      kLintBin + " " + args + " > " + capture + " 2>&1";
  const int raw = std::system(command.c_str());
  LintRun run;
  run.exit_code = WIFEXITED(raw) ? WEXITSTATUS(raw) : -1;
  std::ifstream in(capture);
  std::ostringstream buffer;
  buffer << in.rdbuf();
  run.output = buffer.str();
  return run;
}

std::string fixture(const std::string& name) { return kFixtures + "/" + name; }

// --- Every rule, both ways -------------------------------------------------

struct RuleCase {
  const char* rule;
  const char* violation;  // path relative to lint_fixtures/
  const char* suppressed;
};

class LintRuleTest : public ::testing::TestWithParam<RuleCase> {};

TEST_P(LintRuleTest, ViolationExitsNonZeroAndNamesTheRule) {
  const RuleCase& c = GetParam();
  const LintRun run = run_lint(fixture(c.violation));
  EXPECT_EQ(run.exit_code, 1) << run.output;
  EXPECT_NE(run.output.find(std::string("[") + c.rule + "]"),
            std::string::npos)
      << "expected a [" << c.rule << "] finding, got:\n"
      << run.output;
}

TEST_P(LintRuleTest, NolintEscapeSuppresses) {
  const RuleCase& c = GetParam();
  const LintRun run = run_lint(fixture(c.suppressed));
  EXPECT_EQ(run.exit_code, 0) << "NOLINT case should be clean, got:\n"
                              << run.output;
  EXPECT_TRUE(run.output.empty()) << run.output;
}

INSTANTIATE_TEST_SUITE_P(
    AllRules, LintRuleTest,
    ::testing::Values(
        RuleCase{"rng-determinism", "rng_violation.cpp", "rng_nolint.cpp"},
        RuleCase{"thread-outside-pool", "thread_violation.cpp",
                 "thread_nolint.cpp"},
        RuleCase{"guarded-by", "guarded_violation.hpp", "guarded_nolint.hpp"},
        RuleCase{"iostream-in-lib", "src/iostream_violation.cpp",
                 "src/iostream_nolint.cpp"},
        RuleCase{"real-sleep-in-lib", "src/sleep_violation.cpp",
                 "src/sleep_nolint.cpp"},
        RuleCase{"fp-contract-allowlist", "tensor_bad", "tensor_nolint"},
        RuleCase{"layer-order", "layering_bad", "layering_nolint"},
        RuleCase{"unchecked-status", "status_violation.cpp",
                 "status_nolint.cpp"},
        RuleCase{"raw-persistence", "persist_violation.cpp",
                 "persist_nolint.cpp"}),
    [](const ::testing::TestParamInfo<RuleCase>& info) {
      std::string name = info.param.rule;
      for (char& c : name) {
        if (c == '-') c = '_';
      }
      return name;
    });

// fp-contract-allowlist is bidirectional: an allowlisted file that LOSES its
// -ffp-contract flag (someone "simplifying" the tensor CMakeLists) is also a
// finding — that drift would silently break the kNT bitwise contract.
TEST(LintTest, FpContractMissingFlagIsFlagged) {
  const LintRun run = run_lint(fixture("tensor_missing"));
  EXPECT_EQ(run.exit_code, 1) << run.output;
  EXPECT_NE(run.output.find("[fp-contract-allowlist]"), std::string::npos)
      << run.output;
  EXPECT_NE(run.output.find("gemm_unfused.cpp"), std::string::npos)
      << run.output;
}

// The routine registry's unfused TU is allowlisted too, and policed
// independently: losing ITS -ffp-contract=off is a finding even while the
// original gemm_unfused.cpp keeps the flag.
TEST(LintTest, FpContractRoutineTuIsPolicedIndependently) {
  const LintRun run = run_lint(fixture("tensor_routine_missing"));
  EXPECT_EQ(run.exit_code, 1) << run.output;
  EXPECT_NE(run.output.find("[fp-contract-allowlist]"), std::string::npos)
      << run.output;
  EXPECT_NE(run.output.find("gemm_routines_unfused.cpp"), std::string::npos)
      << run.output;
  const LintRun suppressed = run_lint(fixture("tensor_routine_nolint"));
  EXPECT_EQ(suppressed.exit_code, 0) << suppressed.output;
}

// --- Whole-repo passes -----------------------------------------------------

// The include graph cycle is reported with a full witness path naming both
// files, and NOLINT cannot waive it (the finding says so).
TEST(LintTest, IncludeCycleReportsWitnessPath) {
  const LintRun run = run_lint(fixture("layering_cycle"));
  EXPECT_EQ(run.exit_code, 1) << run.output;
  EXPECT_NE(run.output.find("[include-cycle]"), std::string::npos)
      << run.output;
  EXPECT_NE(run.output.find("event_a.hpp"), std::string::npos) << run.output;
  EXPECT_NE(run.output.find("event_b.hpp"), std::string::npos) << run.output;
  EXPECT_NE(run.output.find(" -> "), std::string::npos) << run.output;
  EXPECT_NE(run.output.find("not NOLINT-suppressible"), std::string::npos)
      << run.output;
}

// Two TUs acquiring the same mutex pair in opposite orders is a potential
// AB/BA deadlock only a CROSS-TU merge can see; the witness names both
// locks and both acquisition sites, in text and in --json.
TEST(LintTest, LockOrderCycleAcrossTusReportsWitness) {
  const LintRun run = run_lint(fixture("lockorder_cycle"));
  EXPECT_EQ(run.exit_code, 1) << run.output;
  EXPECT_NE(run.output.find("[lock-order-cycle]"), std::string::npos)
      << run.output;
  EXPECT_NE(run.output.find("mu_account_a -> mu_account_b"),
            std::string::npos)
      << run.output;
  EXPECT_NE(run.output.find("worker_a.cpp"), std::string::npos) << run.output;
  EXPECT_NE(run.output.find("worker_b.cpp"), std::string::npos) << run.output;

  const LintRun json = run_lint("--json " + fixture("lockorder_cycle"));
  EXPECT_EQ(json.exit_code, 1) << json.output;
  EXPECT_NE(json.output.find("\"rule\": \"lock-order-cycle\""),
            std::string::npos)
      << json.output;
  EXPECT_NE(json.output.find("mu_account_a -> mu_account_b"),
            std::string::npos)
      << json.output;
}

// The ordering-exception table is the ONLY sanctioned suppression for
// lock-order findings: the same AB/BA pair plus an exception entry is clean.
TEST(LintTest, LockOrderExceptionTableSanctionsThePair) {
  const LintRun run = run_lint(fixture("lockorder_exempt"));
  EXPECT_EQ(run.exit_code, 0) << run.output;
  EXPECT_TRUE(run.output.empty()) << run.output;
}

// A NOLINT marker missing its ')' must become a finding itself and must NOT
// waive the rule it names — both findings appear.
TEST(LintTest, MalformedNolintIsAFindingNotAWaiver) {
  const LintRun run = run_lint(fixture("nolint_malformed.cpp"));
  EXPECT_EQ(run.exit_code, 1) << run.output;
  EXPECT_NE(run.output.find("[nolint-malformed]"), std::string::npos)
      << run.output;
  EXPECT_NE(run.output.find("[rng-determinism]"), std::string::npos)
      << run.output;
}

// build*/, hidden directories and their contents are never scanned: the
// skipdirs fixture plants violations inside each and must stay clean.
TEST(LintTest, BuildAndHiddenDirsAreSkipped) {
  const LintRun run = run_lint(fixture("skipdirs"));
  EXPECT_EQ(run.exit_code, 0) << run.output;
  EXPECT_TRUE(run.output.empty()) << run.output;
}

// --json output is machine-readable and byte-stable: golden-file compare
// with the absolute fixture prefix normalized to @FIXTURES@.
TEST(LintTest, JsonOutputMatchesGolden) {
  const LintRun run = run_lint("--json " + fixture("layering_bad"));
  EXPECT_EQ(run.exit_code, 1);
  std::string normalized = run.output;
  for (std::size_t pos = normalized.find(kFixtures);
       pos != std::string::npos; pos = normalized.find(kFixtures)) {
    normalized.replace(pos, kFixtures.size(), "@FIXTURES@");
  }
  std::ifstream golden(fixture("layering_bad.golden.json"));
  ASSERT_TRUE(golden.good());
  std::ostringstream expected;
  expected << golden.rdbuf();
  EXPECT_EQ(normalized, expected.str());
}

// --rule filters findings to the named rules; --list-rules names every pass.
TEST(LintTest, RuleFilterAndListRules) {
  EXPECT_EQ(run_lint("--rule layer-order " + fixture("layering_bad"))
                .exit_code,
            1);
  EXPECT_EQ(run_lint("--rule unchecked-status " + fixture("layering_bad"))
                .exit_code,
            0);
  EXPECT_EQ(run_lint("--rule no-such-rule " + fixture("layering_bad"))
                .exit_code,
            2);

  const LintRun list = run_lint("--list-rules");
  EXPECT_EQ(list.exit_code, 0);
  for (const char* rule :
       {"rng-determinism", "thread-outside-pool", "fp-contract-allowlist",
        "guarded-by", "iostream-in-lib", "real-sleep-in-lib",
        "nolint-malformed", "layer-order", "include-cycle",
        "lock-order-cycle", "unchecked-status", "raw-persistence"}) {
    EXPECT_NE(list.output.find(rule), std::string::npos)
        << "missing rule in --list-rules: " << rule;
  }
}

// The CI invocation: the real tree must stay clean. If this fails, either
// fix the new violation or add a justified `// NOLINT(rule)` where the rule
// genuinely cannot apply (see CONTRIBUTING "Static analysis").
TEST(LintTest, RealTreeIsClean) {
  const LintRun run = run_lint(kSourceDir + "/src " + kSourceDir + "/tools " +
                               kSourceDir + "/bench");
  EXPECT_EQ(run.exit_code, 0) << run.output;
}

// The annotated concurrent TUs must keep their mutexes paired with
// EDGETUNE_GUARDED_BY members — spot-check the guarded-by rule sees real
// headers, not just fixtures.
TEST(LintTest, AnnotatedHeadersStayClean) {
  for (const char* header :
       {"/src/common/thread_pool.hpp", "/src/common/channel.hpp",
        "/src/tuning/historical_cache.hpp", "/src/tuning/inference_server.hpp",
        "/src/tuning/job_server.hpp", "/src/common/thread_annotations.hpp"}) {
    const LintRun run = run_lint(kSourceDir + header);
    EXPECT_EQ(run.exit_code, 0) << header << ":\n" << run.output;
  }
}

TEST(LintTest, UsageAndMissingPathAreUsageErrors) {
  EXPECT_EQ(run_lint("").exit_code, 2);
  EXPECT_EQ(run_lint(kFixtures + "/does_not_exist").exit_code, 2);
}

}  // namespace
