// Drives the edgetune_lint binary over the fixture snippets in
// tests/lint_fixtures/ — one violating and one NOLINT-suppressed case per
// rule — and asserts the real tree lints clean (the same invocation the CI
// lint job runs).
//
// The thread-safety side of this PR's static layer is compile-time only and
// clang-only, so it cannot be exercised from a gtest binary: CI's
// clang-thread-safety job builds with -Werror=thread-safety and then
// deliberately strips one EDGETUNE_REQUIRES (save_locked's, in
// historical_cache.hpp) and asserts the rebuild FAILS — the negative test
// the acceptance criteria ask for lives there (.github/workflows/ci.yml).

#include <gtest/gtest.h>

#include <cstdlib>
#include <fstream>
#include <sstream>
#include <string>

namespace {

#ifndef EDGETUNE_LINT_BIN
#error "CMake must define EDGETUNE_LINT_BIN (path to the lint binary)"
#endif
#ifndef EDGETUNE_SOURCE_DIR
#error "CMake must define EDGETUNE_SOURCE_DIR (repo root)"
#endif

const std::string kLintBin = EDGETUNE_LINT_BIN;
const std::string kSourceDir = EDGETUNE_SOURCE_DIR;
const std::string kFixtures = kSourceDir + "/tests/lint_fixtures";

struct LintRun {
  int exit_code = -1;
  std::string output;
};

/// Runs `edgetune_lint <args>`, capturing stderr (findings) + exit code.
LintRun run_lint(const std::string& args) {
  const std::string capture = ::testing::TempDir() + "/lint_capture.txt";
  const std::string command =
      kLintBin + " " + args + " > " + capture + " 2>&1";
  const int raw = std::system(command.c_str());
  LintRun run;
  run.exit_code = WIFEXITED(raw) ? WEXITSTATUS(raw) : -1;
  std::ifstream in(capture);
  std::ostringstream buffer;
  buffer << in.rdbuf();
  run.output = buffer.str();
  return run;
}

std::string fixture(const std::string& name) { return kFixtures + "/" + name; }

// --- Every rule, both ways -------------------------------------------------

struct RuleCase {
  const char* rule;
  const char* violation;  // path relative to lint_fixtures/
  const char* suppressed;
};

class LintRuleTest : public ::testing::TestWithParam<RuleCase> {};

TEST_P(LintRuleTest, ViolationExitsNonZeroAndNamesTheRule) {
  const RuleCase& c = GetParam();
  const LintRun run = run_lint(fixture(c.violation));
  EXPECT_EQ(run.exit_code, 1) << run.output;
  EXPECT_NE(run.output.find(std::string("[") + c.rule + "]"),
            std::string::npos)
      << "expected a [" << c.rule << "] finding, got:\n"
      << run.output;
}

TEST_P(LintRuleTest, NolintEscapeSuppresses) {
  const RuleCase& c = GetParam();
  const LintRun run = run_lint(fixture(c.suppressed));
  EXPECT_EQ(run.exit_code, 0) << "NOLINT case should be clean, got:\n"
                              << run.output;
  EXPECT_TRUE(run.output.empty()) << run.output;
}

INSTANTIATE_TEST_SUITE_P(
    AllRules, LintRuleTest,
    ::testing::Values(
        RuleCase{"rng-determinism", "rng_violation.cpp", "rng_nolint.cpp"},
        RuleCase{"thread-outside-pool", "thread_violation.cpp",
                 "thread_nolint.cpp"},
        RuleCase{"guarded-by", "guarded_violation.hpp", "guarded_nolint.hpp"},
        RuleCase{"iostream-in-lib", "src/iostream_violation.cpp",
                 "src/iostream_nolint.cpp"},
        RuleCase{"real-sleep-in-lib", "src/sleep_violation.cpp",
                 "src/sleep_nolint.cpp"},
        RuleCase{"fp-contract-allowlist", "tensor_bad", "tensor_nolint"}),
    [](const ::testing::TestParamInfo<RuleCase>& info) {
      std::string name = info.param.rule;
      for (char& c : name) {
        if (c == '-') c = '_';
      }
      return name;
    });

// fp-contract-allowlist is bidirectional: an allowlisted file that LOSES its
// -ffp-contract flag (someone "simplifying" the tensor CMakeLists) is also a
// finding — that drift would silently break the kNT bitwise contract.
TEST(LintTest, FpContractMissingFlagIsFlagged) {
  const LintRun run = run_lint(fixture("tensor_missing"));
  EXPECT_EQ(run.exit_code, 1) << run.output;
  EXPECT_NE(run.output.find("[fp-contract-allowlist]"), std::string::npos)
      << run.output;
  EXPECT_NE(run.output.find("gemm_unfused.cpp"), std::string::npos)
      << run.output;
}

// The routine registry's unfused TU is allowlisted too, and policed
// independently: losing ITS -ffp-contract=off is a finding even while the
// original gemm_unfused.cpp keeps the flag.
TEST(LintTest, FpContractRoutineTuIsPolicedIndependently) {
  const LintRun run = run_lint(fixture("tensor_routine_missing"));
  EXPECT_EQ(run.exit_code, 1) << run.output;
  EXPECT_NE(run.output.find("[fp-contract-allowlist]"), std::string::npos)
      << run.output;
  EXPECT_NE(run.output.find("gemm_routines_unfused.cpp"), std::string::npos)
      << run.output;
  const LintRun suppressed = run_lint(fixture("tensor_routine_nolint"));
  EXPECT_EQ(suppressed.exit_code, 0) << suppressed.output;
}

// The CI invocation: the real tree must stay clean. If this fails, either
// fix the new violation or add a justified `// NOLINT(rule)` where the rule
// genuinely cannot apply (see CONTRIBUTING "Static analysis").
TEST(LintTest, RealTreeIsClean) {
  const LintRun run = run_lint(kSourceDir + "/src " + kSourceDir + "/tools " +
                               kSourceDir + "/bench");
  EXPECT_EQ(run.exit_code, 0) << run.output;
}

// The annotated concurrent TUs must keep their mutexes paired with
// EDGETUNE_GUARDED_BY members — spot-check the guarded-by rule sees real
// headers, not just fixtures.
TEST(LintTest, AnnotatedHeadersStayClean) {
  for (const char* header :
       {"/src/common/thread_pool.hpp", "/src/common/channel.hpp",
        "/src/tuning/historical_cache.hpp", "/src/tuning/inference_server.hpp",
        "/src/tuning/job_server.hpp", "/src/common/thread_annotations.hpp"}) {
    const LintRun run = run_lint(kSourceDir + header);
    EXPECT_EQ(run.exit_code, 0) << header << ":\n" << run.output;
  }
}

TEST(LintTest, UsageAndMissingPathAreUsageErrors) {
  EXPECT_EQ(run_lint("").exit_code, 2);
  EXPECT_EQ(run_lint(kFixtures + "/does_not_exist").exit_code, 2);
}

}  // namespace
