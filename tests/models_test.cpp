// Tests for the model builders and the analytic architecture specs.
#include <gtest/gtest.h>

#include "models/models.hpp"
#include "nn/conv.hpp"
#include "nn/layers_basic.hpp"
#include "nn/rnn.hpp"
#include "nn/loss.hpp"

namespace edgetune {
namespace {

TEST(ResNetTest, BuildsAllDepths) {
  for (int depth : {18, 34, 50}) {
    Rng rng(1);
    Result<BuiltModel> built = build_resnet({.depth = depth}, rng);
    ASSERT_TRUE(built.ok()) << depth;
    EXPECT_EQ(built.value().name, "resnet" + std::to_string(depth));
    EXPECT_EQ(built.value().arch.sample_shape, (Shape{3, 32, 32}));
  }
}

TEST(ResNetTest, RejectsUnknownDepth) {
  Rng rng(1);
  EXPECT_FALSE(build_resnet({.depth = 20}, rng).ok());
}

TEST(ResNetTest, CostGrowsWithDepth) {
  Rng rng(1);
  const double f18 =
      build_resnet({.depth = 18}, rng).value().arch.flops_per_sample;
  const double f34 =
      build_resnet({.depth = 34}, rng).value().arch.flops_per_sample;
  const double f50 =
      build_resnet({.depth = 50}, rng).value().arch.flops_per_sample;
  EXPECT_LT(f18, f34);
  EXPECT_LT(f34, f50);
}

TEST(ResNetTest, ProxyForwardShape) {
  Rng rng(2);
  BuiltModel model = build_resnet({.depth = 18}, rng).value();
  Shape batch_shape = {2};
  for (auto d : model.proxy_sample_shape) batch_shape.push_back(d);
  Tensor x = Tensor::randn(batch_shape, rng);
  Tensor out = model.net->forward(x, false);
  EXPECT_EQ(out.shape(), (Shape{2, 10}));
}

TEST(ResNetTest, ProxyTrainStepRuns) {
  Rng rng(3);
  BuiltModel model = build_resnet({.depth = 18}, rng).value();
  Tensor x = Tensor::randn({4, 3, 8, 8}, rng);
  Tensor logits = model.net->forward(x, true);
  LossResult loss = softmax_cross_entropy(logits, {0, 1, 2, 3});
  Tensor grad = model.net->backward(loss.grad);
  EXPECT_EQ(grad.shape(), x.shape());
}

TEST(M5Test, BuildsAllEmbedDims) {
  for (std::int64_t e : {32, 64, 128}) {
    Rng rng(4);
    Result<BuiltModel> built = build_m5({.embed_dim = e}, rng);
    ASSERT_TRUE(built.ok()) << e;
  }
  Rng rng(4);
  EXPECT_FALSE(build_m5({.embed_dim = 48}, rng).ok());
}

TEST(M5Test, CostGrowsWithEmbedDim) {
  Rng rng(4);
  const double f32 =
      build_m5({.embed_dim = 32}, rng).value().arch.flops_per_sample;
  const double f128 =
      build_m5({.embed_dim = 128}, rng).value().arch.flops_per_sample;
  EXPECT_LT(f32, f128);
}

TEST(M5Test, ProxyForwardShape) {
  Rng rng(5);
  BuiltModel model = build_m5({.embed_dim = 64, .num_classes = 10}, rng).value();
  Tensor x = Tensor::randn({3, 1, 256}, rng);
  Tensor out = model.net->forward(x, false);
  EXPECT_EQ(out.shape(), (Shape{3, 10}));
}

TEST(TextRnnTest, StrideBoundsEnforced) {
  Rng rng(6);
  EXPECT_TRUE(build_text_rnn({.stride = 1}, rng).ok());
  EXPECT_TRUE(build_text_rnn({.stride = 32}, rng).ok());
  EXPECT_FALSE(build_text_rnn({.stride = 0}, rng).ok());
  EXPECT_FALSE(build_text_rnn({.stride = 33}, rng).ok());
}

TEST(TextRnnTest, LargerStrideIsCheaper) {
  Rng rng(6);
  const double f1 =
      build_text_rnn({.stride = 1}, rng).value().arch.flops_per_sample;
  const double f8 =
      build_text_rnn({.stride = 8}, rng).value().arch.flops_per_sample;
  EXPECT_GT(f1, f8);
}

TEST(TextRnnTest, ProxyForwardShape) {
  Rng rng(7);
  BuiltModel model = build_text_rnn({.stride = 2, .num_classes = 4}, rng).value();
  Tensor ids({2, 32});
  for (std::int64_t i = 0; i < ids.numel(); ++i) {
    ids[i] = static_cast<float>(i % 200);
  }
  Tensor out = model.net->forward(ids, false);
  EXPECT_EQ(out.shape(), (Shape{2, 4}));
}

TEST(YoloTest, DropoutBoundsEnforced) {
  Rng rng(8);
  EXPECT_TRUE(build_tiny_yolo({.dropout = 0.1}, rng).ok());
  EXPECT_TRUE(build_tiny_yolo({.dropout = 0.5}, rng).ok());
  EXPECT_FALSE(build_tiny_yolo({.dropout = 1.0}, rng).ok());
}

TEST(YoloTest, ArchIdEncodesDropout) {
  Rng rng(8);
  BuiltModel a = build_tiny_yolo({.dropout = 0.2}, rng).value();
  BuiltModel b = build_tiny_yolo({.dropout = 0.4}, rng).value();
  EXPECT_NE(a.arch.id, b.arch.id);
}

TEST(YoloTest, FullScaleIsLarge) {
  Rng rng(8);
  BuiltModel model = build_tiny_yolo({.dropout = 0.3}, rng).value();
  EXPECT_GT(model.arch.flops_per_sample, 1e9);  // billions of FLOPs/sample
}

TEST(ResNetTest, Depth50UsesBottlenecks) {
  Rng rng(30);
  BuiltModel model = build_resnet({.depth = 50}, rng).value();
  int bottlenecks = 0;
  for (const LayerInfo& layer : model.arch.layers) {
    if (layer.kind == "bottleneck") ++bottlenecks;
  }
  EXPECT_EQ(bottlenecks, 3 + 4 + 6 + 3);
  // Real ResNet-50 on CIFAR-scale inputs: ~23.5M parameters.
  EXPECT_GT(model.arch.params, 2.0e7);
  EXPECT_LT(model.arch.params, 3.0e7);
}

TEST(ResNetTest, Depth50ProxyTrainStepRuns) {
  Rng rng(31);
  BuiltModel model = build_resnet({.depth = 50}, rng).value();
  Tensor x = Tensor::randn({2, 3, 8, 8}, rng);
  Tensor logits = model.net->forward(x, true);
  LossResult loss = softmax_cross_entropy(logits, {0, 1});
  Tensor grad = model.net->backward(loss.grad);
  EXPECT_EQ(grad.shape(), x.shape());
}

TEST(WorkloadTest, BuildByKind) {
  Rng rng(9);
  EXPECT_EQ(build_workload_model(WorkloadKind::kImageClassification, 34, rng)
                .value()
                .name,
            "resnet34");
  EXPECT_EQ(build_workload_model(WorkloadKind::kSpeech, 32, rng).value().name,
            "m5_e32");
  EXPECT_EQ(build_workload_model(WorkloadKind::kNlp, 4, rng).value().name,
            "textrnn_s4");
  EXPECT_TRUE(
      build_workload_model(WorkloadKind::kDetection, 0.25, rng).ok());
}

TEST(WorkloadTest, KindNames) {
  EXPECT_STREQ(workload_kind_name(WorkloadKind::kImageClassification), "IC");
  EXPECT_STREQ(workload_kind_name(WorkloadKind::kSpeech), "SR");
  EXPECT_STREQ(workload_kind_name(WorkloadKind::kNlp), "NLP");
  EXPECT_STREQ(workload_kind_name(WorkloadKind::kDetection), "OD");
}

// The analytic info_* formulas must agree with the executable layers'
// describe() — this pins the full-scale specs to the proxy implementation.
TEST(ArchSpecTest, AnalyticInfoMatchesLayerDescribe) {
  Rng rng(10);
  BuiltModel model = build_resnet({.depth = 18}, rng).value();
  // Rebuild the proxy-scale arch analytically by describing the proxy net.
  Shape input = {1};
  for (auto d : model.proxy_sample_shape) input.push_back(d);
  LayerInfo total = model.net->describe(input);
  EXPECT_GT(total.flops_forward, 0);
  // The full-scale arch has the same layer structure, so FLOPs per layer
  // count must match in cardinality.
  EXPECT_EQ(model.arch.layers.size(), model.net->size());
}

TEST(ArchSpecTest, TotalsAreSumsOfLayers) {
  Rng rng(11);
  BuiltModel model = build_m5({.embed_dim = 64}, rng).value();
  double flops = 0, params = 0;
  for (const auto& layer : model.arch.layers) {
    flops += layer.flops_forward;
    params += layer.param_count;
  }
  EXPECT_DOUBLE_EQ(model.arch.flops_per_sample, flops);
  EXPECT_DOUBLE_EQ(model.arch.params, params);
  EXPECT_DOUBLE_EQ(model.arch.param_bytes(), params * 4.0);
}

TEST(ArchSpecTest, InfoFormulasMatchLayers) {
  Rng rng(12);
  // Cross-check a few analytic formulas directly against layer describe().
  Conv2D conv(3, 8, 3, 2, 1, rng, false);
  LayerInfo via_layer = conv.describe({2, 3, 16, 16});
  LayerInfo via_formula = info_conv2d({2, 3, 16, 16}, 8, 3, 2, 1, false);
  EXPECT_DOUBLE_EQ(via_layer.flops_forward, via_formula.flops_forward);
  EXPECT_DOUBLE_EQ(via_layer.param_count, via_formula.param_count);
  EXPECT_EQ(via_layer.output_shape, via_formula.output_shape);

  Linear linear(32, 10, rng);
  EXPECT_DOUBLE_EQ(linear.describe({4, 32}).flops_forward,
                   info_linear({4, 32}, 10).flops_forward);

  RNN rnn(16, 16, 2, rng);
  LayerInfo r1 = rnn.describe({1, 32, 16});
  LayerInfo r2 = info_rnn({1, 32, 16}, 16, 2);
  EXPECT_DOUBLE_EQ(r1.flops_forward, r2.flops_forward);
  EXPECT_DOUBLE_EQ(r1.param_count, r2.param_count);
}

TEST(ArchSpecTest, DeterministicAcrossBuilds) {
  Rng rng1(13), rng2(14);  // different weight seeds, same structure
  BuiltModel a = build_resnet({.depth = 34}, rng1).value();
  BuiltModel b = build_resnet({.depth = 34}, rng2).value();
  EXPECT_EQ(a.arch.id, b.arch.id);
  EXPECT_DOUBLE_EQ(a.arch.flops_per_sample, b.arch.flops_per_sample);
}

}  // namespace
}  // namespace edgetune
