// Tests for the CLI flag parser and the JSON report round-trip.
#include <gtest/gtest.h>

#include <cstdio>
#include <filesystem>

#include "common/flags.hpp"
#include "tuning/report_io.hpp"

namespace edgetune {
namespace {

TEST(FlagParserTest, DefaultsApplyWhenUnset) {
  FlagParser flags;
  flags.define("workload", "IC", "w");
  const char* argv[] = {"prog"};
  ASSERT_TRUE(flags.parse(1, argv).is_ok());
  EXPECT_EQ(flags.get("workload"), "IC");
}

TEST(FlagParserTest, EqualsSyntax) {
  FlagParser flags;
  flags.define("seed", "1", "s");
  const char* argv[] = {"prog", "--seed=42"};
  ASSERT_TRUE(flags.parse(2, argv).is_ok());
  EXPECT_EQ(flags.get_int("seed"), 42);
}

TEST(FlagParserTest, SpaceSyntax) {
  FlagParser flags;
  flags.define("metric", "runtime", "m");
  const char* argv[] = {"prog", "--metric", "energy"};
  ASSERT_TRUE(flags.parse(3, argv).is_ok());
  EXPECT_EQ(flags.get("metric"), "energy");
}

TEST(FlagParserTest, BareBooleanIsTrue) {
  FlagParser flags;
  flags.define("verbose", "false", "v");
  flags.define("level", "1", "l");
  const char* argv[] = {"prog", "--verbose", "--level=3"};
  ASSERT_TRUE(flags.parse(3, argv).is_ok());
  EXPECT_TRUE(flags.get_bool("verbose"));
  EXPECT_EQ(flags.get_int("level"), 3);
}

TEST(FlagParserTest, UnknownFlagIsError) {
  FlagParser flags;
  flags.define("known", "1", "k");
  const char* argv[] = {"prog", "--unknown=2"};
  EXPECT_FALSE(flags.parse(2, argv).is_ok());
}

TEST(FlagParserTest, PositionalArgumentsCollected) {
  FlagParser flags;
  flags.define("x", "0", "x");
  const char* argv[] = {"prog", "first", "--x=1", "second"};
  ASSERT_TRUE(flags.parse(4, argv).is_ok());
  EXPECT_EQ(flags.positional(),
            (std::vector<std::string>{"first", "second"}));
}

TEST(FlagParserTest, DoubleParsing) {
  FlagParser flags;
  flags.define("cap", "0.5", "c");
  const char* argv[] = {"prog", "--cap", "12.5"};
  ASSERT_TRUE(flags.parse(3, argv).is_ok());
  EXPECT_DOUBLE_EQ(flags.get_double("cap"), 12.5);
}

TEST(FlagParserTest, HelpListsFlags) {
  FlagParser flags;
  flags.define("alpha", "1", "the alpha knob");
  const std::string help = flags.help();
  EXPECT_NE(help.find("--alpha"), std::string::npos);
  EXPECT_NE(help.find("the alpha knob"), std::string::npos);
}

TuningReport sample_report() {
  TuningReport report;
  report.system = "edgetune";
  report.best_config = {{"model_hparam", 18}, {"train_batch", 128}};
  report.best_accuracy = 0.82;
  report.best_objective = 3.25;
  report.inference.config = {{"inf_batch", 16}, {"cores", 4}};
  report.inference.throughput_sps = 12.5;
  report.inference.energy_per_sample_j = 0.4;
  report.inference.from_cache = true;
  report.tuning_runtime_s = 615.0;
  report.tuning_energy_j = 9001.0;
  report.cache_hits = 7;
  report.cache_misses = 3;
  TrialLog trial;
  trial.id = 0;
  trial.config = report.best_config;
  trial.resource = 4;
  trial.budget = {4, 0.4};
  trial.accuracy = 0.8;
  trial.duration_s = 120;
  trial.energy_j = 4000;
  trial.objective = 3.25;
  trial.inference_cached = false;
  trial.inference_tuning_s = 2.4;
  trial.inference_stall_s = 0;
  report.trials.push_back(trial);
  return report;
}

TEST(ReportIoTest, PerDeviceRecommendationsRoundTrip) {
  TuningReport report = sample_report();
  InferenceRecommendation arm;
  arm.config = {{"inf_batch", 4}};
  arm.throughput_sps = 3.5;
  arm.peak_memory_bytes = 123456;
  report.per_device.emplace("armv7", arm);
  Result<TuningReport> restored = report_from_json(report_to_json(report));
  ASSERT_TRUE(restored.ok());
  ASSERT_EQ(restored.value().per_device.size(), 1u);
  const auto& rec = restored.value().per_device.at("armv7");
  EXPECT_DOUBLE_EQ(rec.throughput_sps, 3.5);
  EXPECT_DOUBLE_EQ(rec.peak_memory_bytes, 123456);
  EXPECT_DOUBLE_EQ(rec.config.at("inf_batch"), 4);
}

TEST(ReportIoTest, JsonRoundTripPreservesEverything) {
  TuningReport original = sample_report();
  Result<TuningReport> restored =
      report_from_json(report_to_json(original));
  ASSERT_TRUE(restored.ok());
  const TuningReport& r = restored.value();
  EXPECT_EQ(r.system, original.system);
  EXPECT_EQ(r.best_config, original.best_config);
  EXPECT_DOUBLE_EQ(r.best_accuracy, original.best_accuracy);
  EXPECT_DOUBLE_EQ(r.best_objective, original.best_objective);
  EXPECT_EQ(r.inference.config, original.inference.config);
  EXPECT_DOUBLE_EQ(r.inference.throughput_sps,
                   original.inference.throughput_sps);
  EXPECT_EQ(r.cache_hits, original.cache_hits);
  ASSERT_EQ(r.trials.size(), 1u);
  EXPECT_EQ(r.trials[0].budget.epochs, 4);
  EXPECT_DOUBLE_EQ(r.trials[0].budget.data_fraction, 0.4);
  EXPECT_DOUBLE_EQ(r.trials[0].inference_tuning_s, 2.4);
}

TEST(ReportIoTest, SaveAndLoadFile) {
  const std::string path =
      (std::filesystem::temp_directory_path() / "edgetune_report_test.json")
          .string();
  std::remove(path.c_str());
  TuningReport original = sample_report();
  ASSERT_TRUE(save_report(original, path).is_ok());
  Result<TuningReport> loaded = load_report(path);
  ASSERT_TRUE(loaded.ok());
  EXPECT_EQ(loaded.value().best_config, original.best_config);
  std::remove(path.c_str());
}

TEST(ReportIoTest, LoadMissingFileIsNotFound) {
  Result<TuningReport> loaded = load_report("/nonexistent/report.json");
  ASSERT_FALSE(loaded.ok());
  EXPECT_EQ(loaded.status().code(), StatusCode::kNotFound);
}

TEST(ReportIoTest, FromJsonToleratesMissingFields) {
  Result<Json> json = Json::parse("{\"system\": \"tune\"}");
  ASSERT_TRUE(json.ok());
  Result<TuningReport> report = report_from_json(json.value());
  ASSERT_TRUE(report.ok());
  EXPECT_EQ(report.value().system, "tune");
  EXPECT_TRUE(report.value().trials.empty());
}

TEST(ReportIoTest, NonObjectJsonIsError) {
  EXPECT_FALSE(report_from_json(Json(JsonArray{})).ok());
}

}  // namespace
}  // namespace edgetune
