// Unit tests for src/common: Status/Result, Rng, Json, strings, tables,
// SimClock.
#include <gtest/gtest.h>

#include <cmath>
#include <set>

#include "common/json.hpp"
#include "common/rng.hpp"
#include "common/sim_clock.hpp"
#include "common/status.hpp"
#include "common/strings.hpp"
#include "common/table.hpp"

namespace edgetune {
namespace {

// --- Status / Result ---------------------------------------------------------

TEST(StatusTest, DefaultIsOk) {
  Status s;
  EXPECT_TRUE(s.is_ok());
  EXPECT_EQ(s.code(), StatusCode::kOk);
  EXPECT_EQ(s.to_string(), "OK");
}

TEST(StatusTest, ErrorCarriesCodeAndMessage) {
  Status s = Status::invalid_argument("bad input");
  EXPECT_FALSE(s.is_ok());
  EXPECT_EQ(s.code(), StatusCode::kInvalidArgument);
  EXPECT_EQ(s.to_string(), "INVALID_ARGUMENT: bad input");
}

TEST(StatusTest, AllCodesHaveNames) {
  for (int c = 0; c <= static_cast<int>(StatusCode::kIo); ++c) {
    EXPECT_STRNE(status_code_name(static_cast<StatusCode>(c)), "UNKNOWN");
  }
}

TEST(ResultTest, HoldsValue) {
  Result<int> r(42);
  ASSERT_TRUE(r.ok());
  EXPECT_EQ(r.value(), 42);
  EXPECT_EQ(r.value_or(7), 42);
}

TEST(ResultTest, HoldsError) {
  Result<int> r(Status::not_found("missing"));
  ASSERT_FALSE(r.ok());
  EXPECT_EQ(r.status().code(), StatusCode::kNotFound);
  EXPECT_EQ(r.value_or(7), 7);
}

Result<int> parse_positive(int x) {
  if (x <= 0) return Status::out_of_range("not positive");
  return x;
}

Result<int> doubled_positive(int x) {
  ET_ASSIGN_OR_RETURN(int v, parse_positive(x));
  return v * 2;
}

TEST(ResultTest, AssignOrReturnPropagates) {
  EXPECT_EQ(doubled_positive(21).value(), 42);
  EXPECT_EQ(doubled_positive(-1).status().code(), StatusCode::kOutOfRange);
}

Status check_all_positive(const std::vector<int>& xs) {
  for (int x : xs) {
    ET_RETURN_IF_ERROR(parse_positive(x).ok()
                           ? Status::ok()
                           : Status::out_of_range("bad"));
  }
  return Status::ok();
}

TEST(ResultTest, ReturnIfErrorShortCircuits) {
  EXPECT_TRUE(check_all_positive({1, 2, 3}).is_ok());
  EXPECT_FALSE(check_all_positive({1, -2, 3}).is_ok());
}

// --- Rng ----------------------------------------------------------------------

TEST(RngTest, DeterministicForSeed) {
  Rng a(123), b(123);
  for (int i = 0; i < 100; ++i) {
    EXPECT_EQ(a.next_u64(), b.next_u64());
  }
}

TEST(RngTest, DifferentSeedsDiffer) {
  Rng a(1), b(2);
  int same = 0;
  for (int i = 0; i < 64; ++i) {
    if (a.next_u64() == b.next_u64()) ++same;
  }
  EXPECT_LT(same, 2);
}

TEST(RngTest, UniformInRange) {
  Rng rng(5);
  for (int i = 0; i < 1000; ++i) {
    const double u = rng.uniform();
    EXPECT_GE(u, 0.0);
    EXPECT_LT(u, 1.0);
    const double v = rng.uniform(3.0, 7.0);
    EXPECT_GE(v, 3.0);
    EXPECT_LT(v, 7.0);
  }
}

TEST(RngTest, UniformIntCoversInclusiveRange) {
  Rng rng(6);
  std::set<std::int64_t> seen;
  for (int i = 0; i < 2000; ++i) {
    const std::int64_t v = rng.uniform_int(2, 5);
    EXPECT_GE(v, 2);
    EXPECT_LE(v, 5);
    seen.insert(v);
  }
  EXPECT_EQ(seen.size(), 4u);
}

TEST(RngTest, GaussianMoments) {
  Rng rng(7);
  const int n = 40000;
  double sum = 0, sum_sq = 0;
  for (int i = 0; i < n; ++i) {
    const double g = rng.gaussian();
    sum += g;
    sum_sq += g * g;
  }
  const double mean = sum / n;
  const double var = sum_sq / n - mean * mean;
  EXPECT_NEAR(mean, 0.0, 0.03);
  EXPECT_NEAR(var, 1.0, 0.05);
}

TEST(RngTest, ExponentialMean) {
  Rng rng(8);
  const int n = 40000;
  double sum = 0;
  for (int i = 0; i < n; ++i) sum += rng.exponential(4.0);
  EXPECT_NEAR(sum / n, 0.25, 0.01);
}

TEST(RngTest, BernoulliFrequency) {
  Rng rng(9);
  int hits = 0;
  for (int i = 0; i < 20000; ++i) hits += rng.bernoulli(0.3) ? 1 : 0;
  EXPECT_NEAR(hits / 20000.0, 0.3, 0.02);
}

TEST(RngTest, ShuffleIsPermutation) {
  Rng rng(10);
  std::vector<int> v = {1, 2, 3, 4, 5, 6, 7, 8};
  std::vector<int> orig = v;
  rng.shuffle(v);
  std::sort(v.begin(), v.end());
  EXPECT_EQ(v, orig);
}

TEST(RngTest, SplitStreamsAreIndependent) {
  Rng parent(11);
  Rng child1 = parent.split();
  Rng child2 = parent.split();
  EXPECT_NE(child1.next_u64(), child2.next_u64());
}

TEST(RngTest, StableHashIsStable) {
  EXPECT_EQ(stable_hash64(std::string("edgetune")),
            stable_hash64(std::string("edgetune")));
  EXPECT_NE(stable_hash64(std::string("a")), stable_hash64(std::string("b")));
}

// --- Json ---------------------------------------------------------------------

TEST(JsonTest, ScalarRoundTrips) {
  EXPECT_EQ(Json(nullptr).dump(), "null");
  EXPECT_EQ(Json(true).dump(), "true");
  EXPECT_EQ(Json(42).dump(), "42");
  EXPECT_EQ(Json(-1.5).dump(), "-1.5");
  EXPECT_EQ(Json("hi").dump(), "\"hi\"");
}

TEST(JsonTest, ObjectRoundTrip) {
  JsonObject obj;
  obj.emplace("name", "edgetune");
  obj.emplace("trials", 32);
  obj.emplace("nested", JsonArray{Json(1), Json(2.5), Json(false)});
  const std::string text = Json(obj).dump();
  Result<Json> parsed = Json::parse(text);
  ASSERT_TRUE(parsed.ok());
  EXPECT_EQ(parsed.value().get_string("name", ""), "edgetune");
  EXPECT_EQ(parsed.value().get_number("trials", 0), 32);
  EXPECT_EQ(parsed.value().find("nested")->as_array().size(), 3u);
}

TEST(JsonTest, StringEscapes) {
  const Json j(std::string("line1\nline\\2 \"quoted\"\t"));
  Result<Json> parsed = Json::parse(j.dump());
  ASSERT_TRUE(parsed.ok());
  EXPECT_EQ(parsed.value().as_string(), "line1\nline\\2 \"quoted\"\t");
}

TEST(JsonTest, UnicodeEscapeParses) {
  Result<Json> parsed = Json::parse("\"a\\u0041b\"");
  ASSERT_TRUE(parsed.ok());
  EXPECT_EQ(parsed.value().as_string(), "aAb");
}

TEST(JsonTest, ParseErrors) {
  EXPECT_FALSE(Json::parse("{").ok());
  EXPECT_FALSE(Json::parse("[1,]").ok());
  EXPECT_FALSE(Json::parse("tru").ok());
  EXPECT_FALSE(Json::parse("{\"a\":1} extra").ok());
  EXPECT_FALSE(Json::parse("\"unterminated").ok());
  EXPECT_FALSE(Json::parse("{1: 2}").ok());
}

TEST(JsonTest, WhitespaceTolerant) {
  Result<Json> parsed = Json::parse("  { \"a\" : [ 1 , 2 ] }\n");
  ASSERT_TRUE(parsed.ok());
  EXPECT_EQ(parsed.value().find("a")->as_array()[1].as_int(), 2);
}

TEST(JsonTest, PrettyPrintReparses) {
  JsonObject obj;
  obj.emplace("xs", JsonArray{Json(1), Json(2)});
  obj.emplace("flag", true);
  Result<Json> parsed = Json::parse(Json(obj).dump_pretty());
  ASSERT_TRUE(parsed.ok());
  EXPECT_TRUE(parsed.value().get_bool("flag", false));
}

TEST(JsonTest, NanSerializesAsNull) {
  EXPECT_EQ(Json(std::nan("")).dump(), "null");
}

TEST(JsonTest, FallbackGetters) {
  Result<Json> parsed = Json::parse("{\"x\": 1}");
  ASSERT_TRUE(parsed.ok());
  EXPECT_EQ(parsed.value().get_number("missing", -1.0), -1.0);
  EXPECT_EQ(parsed.value().get_string("x", "fallback"), "fallback");
}

// --- Strings ------------------------------------------------------------------

TEST(StringsTest, Split) {
  EXPECT_EQ(split("a,b,c", ','), (std::vector<std::string>{"a", "b", "c"}));
  EXPECT_EQ(split("a,,c", ','), (std::vector<std::string>{"a", "", "c"}));
  EXPECT_EQ(split("", ','), (std::vector<std::string>{""}));
}

TEST(StringsTest, Join) {
  EXPECT_EQ(join({"a", "b"}, "-"), "a-b");
  EXPECT_EQ(join({}, "-"), "");
}

TEST(StringsTest, Trim) {
  EXPECT_EQ(trim("  hi \t\n"), "hi");
  EXPECT_EQ(trim(""), "");
  EXPECT_EQ(trim("   "), "");
}

TEST(StringsTest, StartsWith) {
  EXPECT_TRUE(starts_with("edgetune", "edge"));
  EXPECT_FALSE(starts_with("edge", "edgetune"));
}

TEST(StringsTest, FormatDouble) {
  EXPECT_EQ(format_double(3.14159, 2), "3.14");
  EXPECT_EQ(format_double(-1.0, 0), "-1");
}

TEST(StringsTest, ParseIntIsStrict) {
  int value = -1;
  EXPECT_TRUE(parse_int("42", &value));
  EXPECT_EQ(value, 42);
  EXPECT_TRUE(parse_int("-7", &value));
  EXPECT_EQ(value, -7);
  EXPECT_TRUE(parse_int("0", &value));
  EXPECT_EQ(value, 0);

  value = 123;
  EXPECT_FALSE(parse_int("", &value));
  EXPECT_FALSE(parse_int("12x", &value));   // trailing junk
  EXPECT_FALSE(parse_int(" 12", &value));   // leading space
  EXPECT_FALSE(parse_int("1.5", &value));   // not an integer
  EXPECT_FALSE(parse_int("99999999999999", &value));  // out of range
  EXPECT_EQ(value, 123);  // failures leave *out untouched
}

TEST(StringsTest, HumanCount) {
  EXPECT_EQ(human_count(1500), "1.50 K");
  EXPECT_EQ(human_count(2.5e9), "2.50 G");
  EXPECT_EQ(human_count(12), "12.00");
}

// --- TextTable / BoxStats -----------------------------------------------------

TEST(TableTest, RendersAlignedColumns) {
  TextTable table({"name", "value"});
  table.add_row({"alpha", "1"});
  table.add_row({"b", "10000"});
  const std::string out = table.render();
  EXPECT_NE(out.find("| alpha | 1     |"), std::string::npos);
  EXPECT_NE(out.find("| b     | 10000 |"), std::string::npos);
}

TEST(TableTest, HandlesShortRows) {
  TextTable table({"a", "b"});
  table.add_row({"only"});
  EXPECT_NE(table.render().find("only"), std::string::npos);
}

TEST(BoxStatsTest, QuartilesOfKnownData) {
  BoxStats stats = box_stats({1, 2, 3, 4, 5});
  EXPECT_DOUBLE_EQ(stats.min, 1);
  EXPECT_DOUBLE_EQ(stats.median, 3);
  EXPECT_DOUBLE_EQ(stats.max, 5);
  EXPECT_DOUBLE_EQ(stats.mean, 3);
  EXPECT_DOUBLE_EQ(stats.q1, 2);
  EXPECT_DOUBLE_EQ(stats.q3, 4);
}

TEST(BoxStatsTest, EmptyInputIsZero) {
  BoxStats stats = box_stats({});
  EXPECT_EQ(stats.median, 0);
}

// --- SimClock -----------------------------------------------------------------

TEST(SimClockTest, AdvanceAccumulates) {
  SimClock clock;
  EXPECT_EQ(clock.now(), 0.0);
  clock.advance(1.5);
  clock.advance(0.5);
  EXPECT_DOUBLE_EQ(clock.now(), 2.0);
}

TEST(SimClockTest, AdvanceToNeverGoesBack) {
  SimClock clock;
  clock.advance_to(5.0);
  clock.advance_to(3.0);
  EXPECT_DOUBLE_EQ(clock.now(), 5.0);
  clock.reset();
  EXPECT_EQ(clock.now(), 0.0);
}

}  // namespace
}  // namespace edgetune
