// Tests for the Trainer loop: history, early stopping, LR decay.
#include <gtest/gtest.h>

#include "data/synthetic.hpp"
#include "data/trainer.hpp"
#include "models/models.hpp"

namespace edgetune {
namespace {

struct Fixture {
  BuiltModel model;
  std::unique_ptr<Dataset> dataset;
  DatasetView train, val;
  Rng rng{7};

  Fixture() {
    Rng build_rng(1);
    model = build_text_rnn({.stride = 1, .num_classes = 4}, build_rng)
                .value();
    dataset = make_workload_data(WorkloadKind::kNlp, 500, 3);
    Rng split_rng(2);
    auto [t, v] = DatasetView::all(*dataset).split(0.8, split_rng);
    train = std::move(t);
    val = std::move(v);
  }
};

TEST(TrainerTest, FitRecordsHistoryAndImproves) {
  Fixture f;
  TrainerOptions options;
  options.epochs = 6;
  options.sgd.learning_rate = 0.05;
  Trainer trainer(*f.model.net, options, f.rng);
  Result<TrainingHistory> history = trainer.fit(f.train, f.val);
  ASSERT_TRUE(history.ok());
  ASSERT_EQ(history.value().epochs_run(), 6);
  EXPECT_GT(history.value().best_accuracy, 0.4);
  EXPECT_GE(history.value().best_epoch, 1);
  // Loss decreases over training.
  EXPECT_LT(history.value().epochs.back().train_loss,
            history.value().epochs.front().train_loss);
  // Epochs are numbered 1..N.
  EXPECT_EQ(history.value().epochs.front().epoch, 1);
  EXPECT_EQ(history.value().epochs.back().epoch, 6);
}

TEST(TrainerTest, EarlyStoppingTriggers) {
  Fixture f;
  TrainerOptions options;
  options.epochs = 40;
  options.sgd.learning_rate = 0.1;
  options.patience = 3;
  Trainer trainer(*f.model.net, options, f.rng);
  Result<TrainingHistory> history = trainer.fit(f.train, f.val);
  ASSERT_TRUE(history.ok());
  // The easy task converges early; patience must kick in well before 40.
  EXPECT_TRUE(history.value().stopped_early);
  EXPECT_LT(history.value().epochs_run(), 40);
  EXPECT_GE(history.value().epochs_run(),
            history.value().best_epoch);
}

TEST(TrainerTest, LrDecayDoesNotBreakTraining) {
  Fixture f;
  TrainerOptions options;
  options.epochs = 6;
  options.sgd.learning_rate = 0.1;
  options.lr_decay = 0.5;
  options.lr_decay_every = 2;
  Trainer trainer(*f.model.net, options, f.rng);
  Result<TrainingHistory> history = trainer.fit(f.train, f.val);
  ASSERT_TRUE(history.ok());
  EXPECT_GT(history.value().best_accuracy, 0.4);
}

TEST(TrainerTest, EmptyTrainViewIsError) {
  Fixture f;
  TrainerOptions options;
  Trainer trainer(*f.model.net, options, f.rng);
  EXPECT_FALSE(trainer.fit(DatasetView{}, f.val).ok());
}

TEST(TrainerTest, InvalidOptionsAreErrors) {
  Fixture f;
  TrainerOptions options;
  options.epochs = 0;
  Trainer trainer(*f.model.net, options, f.rng);
  EXPECT_FALSE(trainer.fit(f.train, f.val).ok());
}

TEST(TrainerTest, SkippedValidationYieldsZeroAccuracies) {
  Fixture f;
  TrainerOptions options;
  options.epochs = 2;
  Trainer trainer(*f.model.net, options, f.rng);
  Result<TrainingHistory> history = trainer.fit(f.train, DatasetView{});
  ASSERT_TRUE(history.ok());
  for (const EpochRecord& e : history.value().epochs) {
    EXPECT_DOUBLE_EQ(e.val_accuracy, 0.0);
  }
}

TEST(TrainerTest, EvaluateMatchesManualAccuracy) {
  Fixture f;
  const double acc = Trainer::evaluate(*f.model.net, f.val);
  EXPECT_GE(acc, 0.0);
  EXPECT_LE(acc, 1.0);
}

}  // namespace
}  // namespace edgetune
