// Edge cases across modules: degenerate shapes, boundary configurations,
// overwrite semantics — the corners regular tests skip.
#include <gtest/gtest.h>

#include "common/strings.hpp"
#include "data/synthetic.hpp"
#include "device/cost_model.hpp"
#include "models/models.hpp"
#include "nn/conv.hpp"
#include "nn/layers_basic.hpp"
#include "nn/loss.hpp"
#include "search/algorithms.hpp"
#include "tuning/historical_cache.hpp"

namespace edgetune {
namespace {

// --- NN degenerate shapes -------------------------------------------------------

TEST(EdgeCaseTest, Conv2d1x1KernelIsChannelMix) {
  Rng rng(1);
  Conv2D conv(3, 5, /*kernel=*/1, /*stride=*/1, /*padding=*/0, rng, false);
  Tensor x = Tensor::randn({2, 3, 4, 4}, rng);
  Tensor out = conv.forward(x, false);
  EXPECT_EQ(out.shape(), (Shape{2, 5, 4, 4}));
}

TEST(EdgeCaseTest, LinearBatchOne) {
  Rng rng(2);
  Linear layer(4, 3, rng);
  Tensor x = Tensor::randn({1, 4}, rng);
  Tensor out = layer.forward(x, false);
  EXPECT_EQ(out.shape(), (Shape{1, 3}));
  Tensor grad = layer.backward(Tensor::ones({1, 3}));
  EXPECT_EQ(grad.shape(), x.shape());
}

TEST(EdgeCaseTest, SingleClassBatchLoss) {
  Tensor logits({1, 2}, std::vector<float>{0.0f, 0.0f});
  LossResult result = softmax_cross_entropy(logits, {1});
  EXPECT_NEAR(result.loss, std::log(2.0), 1e-6);
  EXPECT_NEAR(result.grad[0], 0.5, 1e-6);
  EXPECT_NEAR(result.grad[1], -0.5, 1e-6);
}

TEST(EdgeCaseTest, ConvStrideLargerThanKernel) {
  Rng rng(3);
  Conv2D conv(1, 2, /*kernel=*/2, /*stride=*/3, /*padding=*/0, rng, true);
  Tensor x = Tensor::randn({1, 1, 8, 8}, rng);
  Tensor out = conv.forward(x, false);
  EXPECT_EQ(out.dim(2), 3);  // (8-2)/3+1
  EXPECT_EQ(conv.describe(x.shape()).output_shape, out.shape());
}

// --- Search corners -------------------------------------------------------------

TEST(EdgeCaseTest, SingleParameterSpace) {
  SearchSpace space;
  space.add(ParamSpec::categorical("only", {1, 2}));
  GridSearch grid(space, 1, 4);
  Rng rng(4);
  SearchResult result = grid.optimize(
      [](const Config& c, double) { return c.at("only"); }, rng);
  EXPECT_EQ(result.trials.size(), 2u);
  EXPECT_DOUBLE_EQ(result.best_config.at("only"), 1);
}

TEST(EdgeCaseTest, TpeOnCategoricalOnlySpace) {
  SearchSpace space;
  space.add(ParamSpec::categorical("c", {10, 20, 30}));
  TpeSearch search(space, 1, 30, {.min_observations = 5});
  Rng rng(5);
  // 20 is the optimum.
  SearchResult result = search.optimize(
      [](const Config& c, double) {
        return std::abs(c.at("c") - 20.0);
      },
      rng);
  EXPECT_DOUBLE_EQ(result.best_config.at("c"), 20);
}

TEST(EdgeCaseTest, LogIntegerGridDeduplicates) {
  // A log-scale int grid over a tiny range collapses duplicate rounded
  // points instead of emitting them twice.
  ParamSpec spec = ParamSpec::integer("n", 1, 4, /*log_scale=*/true);
  auto grid = spec.grid(8);
  for (std::size_t i = 1; i < grid.size(); ++i) {
    EXPECT_GT(grid[i], grid[i - 1]);
  }
}

TEST(EdgeCaseTest, HyperBandWithEqualMinMaxResource) {
  SearchSpace space;
  space.add(ParamSpec::real("x", 0, 1));
  HyperBandOptions options{4, 4, 2, 0};  // single rung
  auto hb = make_hyperband(space, options);
  Rng rng(6);
  SearchResult result = hb->optimize(
      [](const Config& c, double r) {
        EXPECT_DOUBLE_EQ(r, 4);  // only the max resource is ever used
        return c.at("x");
      },
      rng);
  EXPECT_FALSE(result.trials.empty());
}

// --- Device corners --------------------------------------------------------------

TEST(EdgeCaseTest, EveryFrequencyLevelOfEveryDeviceWorks) {
  Rng rng(7);
  ArchSpec arch = build_text_rnn({.stride = 4}, rng).value().arch;
  for (const DeviceProfile& device : all_edge_devices()) {
    CostModel model(device);
    for (double freq : device.freq_levels_ghz) {
      Result<CostEstimate> est = model.inference_cost(
          arch, {.batch_size = 2, .cores = 1, .freq_ghz = freq});
      ASSERT_TRUE(est.ok()) << device.name << " @ " << freq;
      EXPECT_GT(est.value().latency_s, 0);
    }
  }
}

TEST(EdgeCaseTest, TinyArchOnBigServer) {
  // A nearly-empty architecture must not divide by zero anywhere.
  ArchSpec arch;
  arch.id = "tiny";
  arch.sample_shape = {2};
  arch.add(info_linear({1, 2}, 2));
  CostModel model(device_titan_server());
  Result<CostEstimate> inf =
      model.inference_cost(arch, {.batch_size = 1, .cores = 1});
  ASSERT_TRUE(inf.ok());
  EXPECT_GT(inf.value().latency_s, 0);
  Result<CostEstimate> train =
      model.train_step_cost(arch, {.batch_size = 1, .num_gpus = 1});
  ASSERT_TRUE(train.ok());
  EXPECT_TRUE(std::isfinite(train.value().energy_j));
}

// --- Cache overwrite --------------------------------------------------------------

TEST(EdgeCaseTest, CacheStoreOverwrites) {
  HistoricalCache cache;
  InferenceRecommendation first;
  first.throughput_sps = 1;
  ASSERT_TRUE(cache.store("a", "d", MetricOfInterest::kEnergy, first).is_ok());
  InferenceRecommendation second;
  second.throughput_sps = 2;
  ASSERT_TRUE(cache.store("a", "d", MetricOfInterest::kEnergy, second).is_ok());
  EXPECT_EQ(cache.size(), 1u);
  EXPECT_DOUBLE_EQ(
      cache.lookup("a", "d", MetricOfInterest::kEnergy)->throughput_sps, 2);
}

// --- Data corners -----------------------------------------------------------------

TEST(EdgeCaseTest, FractionOfFractionComposes) {
  auto ds = make_workload_data(WorkloadKind::kNlp, 100, 1);
  DatasetView view = DatasetView::all(*ds);
  DatasetView half = view.fraction(0.5);
  DatasetView quarter = half.fraction(0.5);
  EXPECT_EQ(half.size(), 50);
  EXPECT_EQ(quarter.size(), 25);
  // The quarter is a prefix of the half.
  EXPECT_FLOAT_EQ(quarter.batch(0, 1).inputs[0], half.batch(0, 1).inputs[0]);
}

TEST(EdgeCaseTest, SingleSampleDataset) {
  SyntheticConfig config;
  config.num_samples = 1;
  config.num_classes = 2;
  auto ds = make_synth_audio(config);
  EXPECT_EQ(ds->size(), 1);
  Batch batch = DatasetView::all(*ds).batch(0, 8);
  EXPECT_EQ(batch.size(), 1);
}

// --- Strings / misc ----------------------------------------------------------------

TEST(EdgeCaseTest, HumanCountNegative) {
  EXPECT_EQ(human_count(-2500), "-2.50 K");
}

TEST(EdgeCaseTest, ConfigToStringEmpty) {
  EXPECT_EQ(config_to_string({}), "{}");
}

}  // namespace
}  // namespace edgetune
