// Tests for budget policies (§2.2 example, Alg. 2 semantics).
#include <gtest/gtest.h>

#include "budget/budget.hpp"

namespace edgetune {
namespace {

TEST(EpochBudgetTest, GrowsLinearlyAndCaps) {
  EpochBudget policy(1, 10);
  EXPECT_EQ(policy.at(1).epochs, 1);
  EXPECT_EQ(policy.at(4).epochs, 4);
  EXPECT_EQ(policy.at(10).epochs, 10);
  EXPECT_EQ(policy.at(50).epochs, 10);  // capped
  EXPECT_DOUBLE_EQ(policy.at(3).data_fraction, 1.0);  // always full data
}

TEST(EpochBudgetTest, MinEpochsScale) {
  EpochBudget policy(2, 16);
  EXPECT_EQ(policy.at(1).epochs, 2);
  EXPECT_EQ(policy.at(4).epochs, 8);
  EXPECT_EQ(policy.at(16).epochs, 16);
}

TEST(EpochBudgetTest, FractionalIterationFloorsAtOne) {
  EpochBudget policy(1, 10);
  EXPECT_EQ(policy.at(0.5).epochs, 1);
}

TEST(DatasetBudgetTest, GrowsFractionOnly) {
  DatasetBudget policy(0.1);
  EXPECT_EQ(policy.at(5).epochs, 1);
  EXPECT_DOUBLE_EQ(policy.at(1).data_fraction, 0.1);
  EXPECT_DOUBLE_EQ(policy.at(5).data_fraction, 0.5);
  EXPECT_DOUBLE_EQ(policy.at(10).data_fraction, 1.0);
  EXPECT_DOUBLE_EQ(policy.at(20).data_fraction, 1.0);  // capped
}

// The paper's running example (§4.3): min epochs 2, min fraction 10% ->
// iteration 2 gives 4 epochs on 20%, iteration 3 gives 6 on 30%; epochs cap
// at 10 from iteration 5 while the fraction keeps growing.
TEST(MultiBudgetTest, PaperExampleSequence) {
  MultiBudget policy(2, 10, 0.1);
  EXPECT_EQ(policy.at(1).epochs, 2);
  EXPECT_DOUBLE_EQ(policy.at(1).data_fraction, 0.1);
  EXPECT_EQ(policy.at(2).epochs, 4);
  EXPECT_DOUBLE_EQ(policy.at(2).data_fraction, 0.2);
  EXPECT_EQ(policy.at(3).epochs, 6);
  EXPECT_DOUBLE_EQ(policy.at(3).data_fraction, 0.3);
  EXPECT_EQ(policy.at(5).epochs, 10);
  EXPECT_EQ(policy.at(7).epochs, 10);  // epochs saturated...
  EXPECT_DOUBLE_EQ(policy.at(7).data_fraction, 0.7);  // ...fraction grows on
  EXPECT_DOUBLE_EQ(policy.at(10).data_fraction, 1.0);
}

TEST(MultiBudgetTest, CheaperThanEpochBudgetAtLowIterations) {
  EpochBudget epochs(1, 10);
  MultiBudget multi(1, 10, 0.1);
  // Work = epochs x fraction: multi-budget trials are strictly cheaper until
  // both dimensions saturate.
  EXPECT_LT(multi.at(1).work_units(), epochs.at(1).work_units());
  EXPECT_LT(multi.at(5).work_units(), epochs.at(5).work_units());
  EXPECT_DOUBLE_EQ(multi.at(10).work_units(), epochs.at(10).work_units());
}

TEST(MultiBudgetTest, MoreThoroughThanDatasetBudget) {
  DatasetBudget dataset(0.1);
  MultiBudget multi(1, 10, 0.1);
  EXPECT_GT(multi.at(5).work_units(), dataset.at(5).work_units());
}

TEST(TimeBudgetTest, CapGrowsWithIteration) {
  TimeBudget policy(30.0, 10);
  EXPECT_DOUBLE_EQ(policy.at(1).time_cap_s, 30.0);
  EXPECT_DOUBLE_EQ(policy.at(4).time_cap_s, 120.0);
  EXPECT_EQ(policy.at(4).epochs, 10);  // epoch ceiling; runner fits fewer
  EXPECT_DOUBLE_EQ(policy.at(0.5).time_cap_s, 30.0);  // floor at minimum
}

TEST(BudgetFactoryTest, NamesResolve) {
  for (const char* name : {"epochs", "dataset", "multi-budget", "time"}) {
    Result<std::unique_ptr<BudgetPolicy>> policy = make_budget_policy(name);
    ASSERT_TRUE(policy.ok()) << name;
    EXPECT_EQ(policy.value()->name(), name);
  }
  EXPECT_FALSE(make_budget_policy("steps").ok());
}

TEST(TrialBudgetTest, WorkUnits) {
  TrialBudget b{4, 0.5};
  EXPECT_DOUBLE_EQ(b.work_units(), 2.0);
}

}  // namespace
}  // namespace edgetune
