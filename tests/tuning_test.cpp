// Tests for the tuning core: objectives, historical cache, inference tuning
// server (incl. async pipelining), trial runner.
#include <gtest/gtest.h>

#include <cstdio>
#include <filesystem>

#include "common/stopwatch.hpp"
#include "models/models.hpp"
#include "tuning/baselines.hpp"
#include "tuning/model_server.hpp"

namespace edgetune {
namespace {

ArchSpec nlp_arch(std::int64_t stride = 2) {
  Rng rng(1);
  return build_text_rnn({.stride = stride, .num_classes = 4}, rng)
      .value()
      .arch;
}

// --- Objectives ----------------------------------------------------------------

TEST(ObjectiveTest, RuntimeRatio) {
  TrialOutcome trial;
  trial.accuracy = 0.8;
  trial.train_time_s = 100;
  InferenceRecommendation rec;
  rec.throughput_sps = 50;  // per-sample time 0.02
  EXPECT_NEAR(tuning_objective(MetricOfInterest::kRuntime, trial, rec, true),
              100 * 0.02 / 0.8, 1e-9);
}

TEST(ObjectiveTest, EnergyRatio) {
  TrialOutcome trial;
  trial.accuracy = 0.5;
  trial.train_energy_j = 1000;
  InferenceRecommendation rec;
  rec.energy_per_sample_j = 0.2;
  EXPECT_NEAR(tuning_objective(MetricOfInterest::kEnergy, trial, rec, true),
              1000 * 0.2 / 0.5, 1e-9);
}

TEST(ObjectiveTest, NonAwareDropsInferenceTerm) {
  TrialOutcome trial;
  trial.accuracy = 0.8;
  trial.train_time_s = 100;
  InferenceRecommendation rec;
  rec.throughput_sps = 50;
  EXPECT_NEAR(
      tuning_objective(MetricOfInterest::kRuntime, trial, rec, false),
      100 / 0.8, 1e-9);
}

TEST(ObjectiveTest, AccuracyFloorPreventsDivideByZero) {
  TrialOutcome trial;
  trial.accuracy = 0.0;
  trial.train_time_s = 10;
  InferenceRecommendation rec;
  const double obj =
      tuning_objective(MetricOfInterest::kRuntime, trial, rec, false);
  EXPECT_TRUE(std::isfinite(obj));
}

TEST(ObjectiveTest, BetterTrialsScoreLower) {
  TrialOutcome fast{.accuracy = 0.8, .train_time_s = 50,
                    .train_energy_j = 100, .arch_id = "a"};
  TrialOutcome slow{.accuracy = 0.8, .train_time_s = 200,
                    .train_energy_j = 100, .arch_id = "a"};
  InferenceRecommendation rec;
  rec.throughput_sps = 10;
  EXPECT_LT(tuning_objective(MetricOfInterest::kRuntime, fast, rec, true),
            tuning_objective(MetricOfInterest::kRuntime, slow, rec, true));
}

TEST(ObjectiveTest, InferenceObjectiveSelectsMetric) {
  EXPECT_DOUBLE_EQ(
      inference_objective(MetricOfInterest::kRuntime, 0.5, 2.0), 0.5);
  EXPECT_DOUBLE_EQ(inference_objective(MetricOfInterest::kEnergy, 0.5, 2.0),
                   2.0);
}

// --- HistoricalCache -------------------------------------------------------------

TEST(CacheTest, StoreAndLookup) {
  HistoricalCache cache;
  InferenceRecommendation rec;
  rec.config = {{"inf_batch", 8.0}};
  rec.throughput_sps = 42;
  ASSERT_TRUE(cache.store("arch1", "rpi3b", MetricOfInterest::kEnergy, rec).is_ok());
  auto hit = cache.lookup("arch1", "rpi3b", MetricOfInterest::kEnergy);
  ASSERT_TRUE(hit.has_value());
  EXPECT_TRUE(hit->from_cache);
  EXPECT_DOUBLE_EQ(hit->throughput_sps, 42);
  EXPECT_EQ(cache.hits(), 1u);
}

TEST(CacheTest, DeviceIsPartOfTheKey) {
  HistoricalCache cache;
  InferenceRecommendation rec;
  ASSERT_TRUE(cache.store("arch1", "rpi3b", MetricOfInterest::kEnergy, rec).is_ok());
  EXPECT_FALSE(
      cache.lookup("arch1", "armv7", MetricOfInterest::kEnergy).has_value());
  EXPECT_TRUE(
      cache.lookup("arch1", "rpi3b", MetricOfInterest::kEnergy).has_value());
}

TEST(CacheTest, ObjectiveIsPartOfTheKey) {
  HistoricalCache cache;
  InferenceRecommendation rec;
  ASSERT_TRUE(cache.store("arch1", "rpi3b", MetricOfInterest::kEnergy, rec).is_ok());
  EXPECT_FALSE(cache.lookup("arch1", "rpi3b", MetricOfInterest::kRuntime).has_value());
  EXPECT_EQ(cache.misses(), 1u);
}

TEST(CacheTest, PersistsAcrossInstances) {
  const std::string path =
      (std::filesystem::temp_directory_path() / "edgetune_cache_test.json")
          .string();
  std::remove(path.c_str());
  {
    HistoricalCache cache(path);
    InferenceRecommendation rec;
    rec.config = {{"inf_batch", 16.0}, {"cores", 2.0}};
    rec.energy_per_sample_j = 0.125;
    ASSERT_TRUE(
        cache.store("resnet18", "rpi3b", MetricOfInterest::kEnergy, rec).is_ok());
  }
  {
    HistoricalCache cache(path);
    auto hit = cache.lookup("resnet18", "rpi3b", MetricOfInterest::kEnergy);
    ASSERT_TRUE(hit.has_value());
    EXPECT_DOUBLE_EQ(hit->energy_per_sample_j, 0.125);
    EXPECT_DOUBLE_EQ(hit->config.at("inf_batch"), 16.0);
  }
  std::remove(path.c_str());
}

TEST(CacheTest, CorruptFileStartsEmpty) {
  const std::string path =
      (std::filesystem::temp_directory_path() / "edgetune_corrupt.json")
          .string();
  {
    std::FILE* f = std::fopen(path.c_str(), "w");
    std::fputs("not json at all {", f);
    std::fclose(f);
  }
  HistoricalCache cache(path);
  EXPECT_EQ(cache.size(), 0u);
  std::remove(path.c_str());
}

// --- InferenceTuningServer --------------------------------------------------------

TEST(InferenceServerTest, TunesAndRespectsDomain) {
  InferenceServerOptions options;
  options.algorithm = "grid";
  options.objective = MetricOfInterest::kEnergy;
  InferenceTuningServer server(device_rpi3b(), options);
  Result<InferenceRecommendation> rec = server.tune(nlp_arch());
  ASSERT_TRUE(rec.ok());
  EXPECT_GT(rec.value().throughput_sps, 0);
  EXPECT_FALSE(rec.value().from_cache);
  EXPECT_GT(rec.value().tuning_time_s, 0);
  EXPECT_TRUE(server.search_space().validate(rec.value().config).is_ok());
}

TEST(InferenceServerTest, SecondTuneHitsCacheAtZeroCost) {
  InferenceServerOptions options;
  options.algorithm = "grid";
  InferenceTuningServer server(device_rpi3b(), options);
  InferenceRecommendation first = server.tune(nlp_arch()).value();
  InferenceRecommendation second = server.tune(nlp_arch()).value();
  EXPECT_TRUE(second.from_cache);
  EXPECT_DOUBLE_EQ(second.tuning_time_s, 0);
  EXPECT_DOUBLE_EQ(second.tuning_energy_j, 0);
  EXPECT_EQ(second.config, first.config);
}

TEST(InferenceServerTest, GridBeatsOrMatchesDefaultConfig) {
  InferenceServerOptions options;
  options.algorithm = "grid";
  options.objective = MetricOfInterest::kEnergy;
  InferenceTuningServer server(device_rpi3b(), options);
  ArchSpec arch = nlp_arch();
  InferenceRecommendation rec = server.tune(arch).value();
  CostEstimate default_est =
      server.evaluate(arch, {.batch_size = 1, .cores = 1}).value();
  EXPECT_LE(rec.energy_per_sample_j, default_est.energy_per_sample_j(1));
}

TEST(InferenceServerTest, BohbAlgorithmAlsoWorks) {
  InferenceServerOptions options;
  options.algorithm = "bohb";
  InferenceTuningServer server(device_i7_7567u(), options);
  Result<InferenceRecommendation> rec = server.tune(nlp_arch(3));
  ASSERT_TRUE(rec.ok());
  EXPECT_GT(rec.value().throughput_sps, 0);
}

TEST(InferenceServerTest, MemoryBudgetConstrainsRecommendation) {
  Rng rng(9);
  ArchSpec arch = build_resnet({.depth = 18}, rng).value().arch;
  InferenceServerOptions unconstrained;
  unconstrained.algorithm = "grid";
  unconstrained.objective = MetricOfInterest::kRuntime;
  InferenceTuningServer free_server(device_armv7(), unconstrained);
  InferenceRecommendation free_rec = free_server.tune(arch).value();
  EXPECT_GT(free_rec.peak_memory_bytes, 0);

  // Budget below the unconstrained pick's footprint forces a leaner config.
  InferenceServerOptions constrained = unconstrained;
  constrained.max_memory_bytes = free_rec.peak_memory_bytes * 0.9;
  InferenceTuningServer tight_server(device_armv7(), constrained);
  InferenceRecommendation tight_rec = tight_server.tune(arch).value();
  EXPECT_LE(tight_rec.peak_memory_bytes, constrained.max_memory_bytes);
  EXPECT_LE(tight_rec.throughput_sps, free_rec.throughput_sps * 1.001);
}

TEST(InferenceServerTest, SubmitIsAsynchronous) {
  InferenceServerOptions options;
  options.algorithm = "grid";
  options.workers = 2;
  InferenceTuningServer server(device_rpi3b(), options);
  auto f1 = server.submit(nlp_arch(2));
  auto f2 = server.submit(nlp_arch(5));
  ASSERT_TRUE(f1.get().ok());
  ASSERT_TRUE(f2.get().ok());
  // Distinct architectures produced distinct cache entries.
  EXPECT_EQ(server.cache().size(), 2u);
}

TEST(InferenceServerTest, DistinctObjectivesCanDiffer) {
  ArchSpec arch = nlp_arch();
  InferenceServerOptions runtime_opts;
  runtime_opts.algorithm = "grid";
  runtime_opts.objective = MetricOfInterest::kRuntime;
  InferenceTuningServer runtime_server(device_rpi3b(), runtime_opts);
  InferenceRecommendation fast = runtime_server.tune(arch).value();

  InferenceServerOptions energy_opts;
  energy_opts.algorithm = "grid";
  energy_opts.objective = MetricOfInterest::kEnergy;
  InferenceTuningServer energy_server(device_rpi3b(), energy_opts);
  InferenceRecommendation frugal = energy_server.tune(arch).value();

  // The runtime-optimal config cannot be slower than the energy-optimal one,
  // and the energy-optimal cannot burn more J/sample than the runtime one.
  EXPECT_GE(fast.throughput_sps, frugal.throughput_sps * 0.999);
  EXPECT_LE(frugal.energy_per_sample_j, fast.energy_per_sample_j * 1.001);
}

// --- TrialRunner -------------------------------------------------------------------

TrialRunnerOptions small_runner(WorkloadKind kind) {
  TrialRunnerOptions options;
  options.workload = kind;
  options.proxy_samples = 300;
  options.seed = 5;
  return options;
}

TEST(TrialRunnerTest, RunsAndReportsSaneOutcome) {
  TrialRunner runner(small_runner(WorkloadKind::kNlp));
  Config config = {{"model_hparam", 2}, {"train_batch", 128}, {"lr", 0.05},
                   {"num_gpus", 1}};
  Result<TrialOutcome> outcome = runner.run(config, {2, 0.5});
  ASSERT_TRUE(outcome.ok());
  EXPECT_GE(outcome.value().accuracy, 0.0);
  EXPECT_LE(outcome.value().accuracy, 1.0);
  EXPECT_GT(outcome.value().train_time_s, 0);
  EXPECT_GT(outcome.value().train_energy_j, 0);
  EXPECT_EQ(outcome.value().arch_id, "textrnn_s2");
}

TEST(TrialRunnerTest, MissingModelHparamIsAnError) {
  TrialRunner runner(small_runner(WorkloadKind::kNlp));
  EXPECT_FALSE(runner.run({{"train_batch", 64}}, {1, 0.5}).ok());
  EXPECT_FALSE(runner.arch_for({{"train_batch", 64}}).ok());
}

TEST(TrialRunnerTest, BudgetScalesSimulatedCost) {
  TrialRunner runner(small_runner(WorkloadKind::kNlp));
  Config config = {{"model_hparam", 2}, {"train_batch", 128}, {"lr", 0.05}};
  const double t_small =
      runner.run(config, {1, 0.2}).value().train_time_s;
  const double t_large =
      runner.run(config, {4, 0.8}).value().train_time_s;
  // 4 epochs on 4x the data ~ 16x the work.
  EXPECT_NEAR(t_large / t_small, 16.0, 2.0);
}

TEST(TrialRunnerTest, MoreBudgetImprovesAccuracy) {
  TrialRunnerOptions options = small_runner(WorkloadKind::kNlp);
  options.proxy_samples = 800;  // enough data for the noisy NLP task
  TrialRunner runner(options);
  Config config = {{"model_hparam", 1}, {"train_batch", 64}, {"lr", 0.05}};
  const double acc_small = runner.run(config, {1, 0.2}).value().accuracy;
  const double acc_large = runner.run(config, {8, 1.0}).value().accuracy;
  EXPECT_GT(acc_large, acc_small);
  EXPECT_GT(acc_large, 0.5);
}

TEST(TrialRunnerTest, ArchForMatchesRunOutcome) {
  TrialRunner runner(small_runner(WorkloadKind::kNlp));
  Config config = {{"model_hparam", 4}, {"train_batch", 64}, {"lr", 0.05}};
  ArchSpec arch = runner.arch_for(config).value();
  TrialOutcome outcome = runner.run(config, {1, 0.3}).value();
  EXPECT_EQ(arch.id, outcome.arch_id);
}

TEST(TrialRunnerTest, TimeCapLimitsEpochs) {
  TrialRunner runner(small_runner(WorkloadKind::kNlp));
  Config config = {{"model_hparam", 2}, {"train_batch", 128}, {"lr", 0.05}};
  // Uncapped: 8 epochs of simulated time.
  TrialBudget full{8, 1.0};
  const double t_full = runner.run(config, full).value().train_time_s;
  // Cap at roughly a quarter of that: at most ~2 epochs run.
  TrialBudget capped{8, 1.0, t_full / 4.0};
  const double t_capped = runner.run(config, capped).value().train_time_s;
  EXPECT_LE(t_capped, t_full / 3.0);
  EXPECT_GT(t_capped, 0);
  // A cap smaller than one epoch still runs one epoch.
  TrialBudget tiny{8, 1.0, 1e-9};
  EXPECT_NEAR(runner.run(config, tiny).value().train_time_s, t_full / 8.0,
              t_full / 80.0);
}

TEST(TrialRunnerTest, GpuCountChangesSimulatedTimeNotAccuracy) {
  TrialRunner runner(small_runner(WorkloadKind::kNlp));
  Config base = {{"model_hparam", 2}, {"train_batch", 512}, {"lr", 0.05},
                 {"num_gpus", 1}};
  Config multi = base;
  multi["num_gpus"] = 8;
  TrialOutcome a = runner.run(base, {2, 0.5}).value();
  TrialOutcome b = runner.run(multi, {2, 0.5}).value();
  EXPECT_NE(a.train_time_s, b.train_time_s);
}

}  // namespace
}  // namespace edgetune
