// Tests for Channel and ThreadPool — the async substrate of the Inference
// Tuning Server (Fig 6).
#include <gtest/gtest.h>

#include <atomic>
#include <thread>

#include "common/channel.hpp"
#include "common/thread_pool.hpp"

namespace edgetune {
namespace {

TEST(ChannelTest, SendReceiveInOrder) {
  Channel<int> ch;
  EXPECT_TRUE(ch.send(1));
  EXPECT_TRUE(ch.send(2));
  EXPECT_EQ(ch.receive().value(), 1);
  EXPECT_EQ(ch.receive().value(), 2);
}

TEST(ChannelTest, TryReceiveEmpty) {
  Channel<int> ch;
  EXPECT_FALSE(ch.try_receive().has_value());
}

TEST(ChannelTest, TrySendRespectsCapacity) {
  Channel<int> ch(2);
  EXPECT_TRUE(ch.try_send(1));
  EXPECT_TRUE(ch.try_send(2));
  EXPECT_FALSE(ch.try_send(3));
  ch.receive();
  EXPECT_TRUE(ch.try_send(3));
}

TEST(ChannelTest, CloseDrainsThenSignals) {
  Channel<int> ch;
  ch.send(7);
  ch.close();
  EXPECT_FALSE(ch.send(8));
  EXPECT_EQ(ch.receive().value(), 7);
  EXPECT_FALSE(ch.receive().has_value());
  EXPECT_TRUE(ch.closed());
}

TEST(ChannelTest, BlockingReceiveWakesOnSend) {
  Channel<int> ch;
  std::thread producer([&] {
    std::this_thread::sleep_for(std::chrono::milliseconds(20));
    ch.send(99);
  });
  EXPECT_EQ(ch.receive().value(), 99);
  producer.join();
}

TEST(ChannelTest, BlockingSendWakesOnReceive) {
  Channel<int> ch(1);
  ch.send(1);
  std::atomic<bool> sent{false};
  std::thread producer([&] {
    ch.send(2);  // blocks until the slot frees
    sent = true;
  });
  std::this_thread::sleep_for(std::chrono::milliseconds(20));
  EXPECT_FALSE(sent.load());
  EXPECT_EQ(ch.receive().value(), 1);
  producer.join();
  EXPECT_TRUE(sent.load());
  EXPECT_EQ(ch.receive().value(), 2);
}

TEST(ChannelTest, MpmcStress) {
  Channel<int> ch(16);
  constexpr int kPerProducer = 500;
  constexpr int kProducers = 3;
  std::atomic<long> sum{0};
  std::vector<std::thread> threads;
  for (int p = 0; p < kProducers; ++p) {
    threads.emplace_back([&ch] {
      for (int i = 1; i <= kPerProducer; ++i) ch.send(i);
    });
  }
  std::vector<std::thread> consumers;
  for (int c = 0; c < 2; ++c) {
    consumers.emplace_back([&] {
      while (auto v = ch.receive()) sum += *v;
    });
  }
  for (auto& t : threads) t.join();
  ch.close();
  for (auto& t : consumers) t.join();
  const long expected =
      kProducers * (kPerProducer * (kPerProducer + 1) / 2);
  EXPECT_EQ(sum.load(), expected);
}

TEST(ThreadPoolTest, ExecutesSubmittedTasks) {
  ThreadPool pool(2);
  auto f1 = pool.submit([] { return 6 * 7; });
  auto f2 = pool.submit([] { return std::string("ok"); });
  EXPECT_EQ(f1.get(), 42);
  EXPECT_EQ(f2.get(), "ok");
}

TEST(ThreadPoolTest, WaitIdleBlocksUntilDrained) {
  ThreadPool pool(2);
  std::atomic<int> done{0};
  for (int i = 0; i < 8; ++i) {
    pool.submit([&done] {
      std::this_thread::sleep_for(std::chrono::milliseconds(5));
      ++done;
    });
  }
  pool.wait_idle();
  EXPECT_EQ(done.load(), 8);
  EXPECT_EQ(pool.pending(), 0u);
}

TEST(ThreadPoolTest, TasksRunConcurrently) {
  ThreadPool pool(2);
  std::atomic<int> running{0};
  std::atomic<int> peak{0};
  std::vector<std::future<void>> futures;
  for (int i = 0; i < 4; ++i) {
    futures.push_back(pool.submit([&] {
      const int now = ++running;
      int expected = peak.load();
      while (now > expected && !peak.compare_exchange_weak(expected, now)) {
      }
      std::this_thread::sleep_for(std::chrono::milliseconds(30));
      --running;
    }));
  }
  for (auto& f : futures) f.get();
  EXPECT_GE(peak.load(), 2);
}

TEST(ThreadPoolTest, ExceptionsPropagateThroughFutures) {
  ThreadPool pool(1);
  auto f = pool.submit([]() -> int { throw std::runtime_error("boom"); });
  EXPECT_THROW(f.get(), std::runtime_error);
}

TEST(ThreadPoolTest, MinimumOneWorker) {
  ThreadPool pool(0);
  EXPECT_EQ(pool.size(), 1u);
  EXPECT_EQ(pool.submit([] { return 1; }).get(), 1);
}

}  // namespace
}  // namespace edgetune
