// Tests for Channel, ThreadPool, and the parallel trial-execution engine —
// the async substrate of the tuning servers (Fig 6).
#include <gtest/gtest.h>

#include <atomic>
#include <cmath>
#include <thread>

#include "common/channel.hpp"
#include "common/thread_pool.hpp"
#include "models/models.hpp"
#include "tuning/baselines.hpp"
#include "tuning/job_server.hpp"
#include "tuning/model_server.hpp"
#include "tuning/report_io.hpp"

namespace edgetune {
namespace {

TEST(ChannelTest, SendReceiveInOrder) {
  Channel<int> ch;
  EXPECT_TRUE(ch.send(1));
  EXPECT_TRUE(ch.send(2));
  EXPECT_EQ(ch.receive().value(), 1);
  EXPECT_EQ(ch.receive().value(), 2);
}

TEST(ChannelTest, TryReceiveEmpty) {
  Channel<int> ch;
  EXPECT_FALSE(ch.try_receive().has_value());
}

TEST(ChannelTest, TrySendRespectsCapacity) {
  Channel<int> ch(2);
  EXPECT_TRUE(ch.try_send(1));
  EXPECT_TRUE(ch.try_send(2));
  EXPECT_FALSE(ch.try_send(3));
  ch.receive();
  EXPECT_TRUE(ch.try_send(3));
}

TEST(ChannelTest, CloseDrainsThenSignals) {
  Channel<int> ch;
  ch.send(7);
  ch.close();
  EXPECT_FALSE(ch.send(8));
  EXPECT_EQ(ch.receive().value(), 7);
  EXPECT_FALSE(ch.receive().has_value());
  EXPECT_TRUE(ch.closed());
}

TEST(ChannelTest, BlockingReceiveWakesOnSend) {
  Channel<int> ch;
  std::thread producer([&] {
    std::this_thread::sleep_for(std::chrono::milliseconds(20));
    ch.send(99);
  });
  EXPECT_EQ(ch.receive().value(), 99);
  producer.join();
}

TEST(ChannelTest, BlockingSendWakesOnReceive) {
  Channel<int> ch(1);
  ch.send(1);
  std::atomic<bool> sent{false};
  std::thread producer([&] {
    ch.send(2);  // blocks until the slot frees
    sent = true;
  });
  std::this_thread::sleep_for(std::chrono::milliseconds(20));
  EXPECT_FALSE(sent.load());
  EXPECT_EQ(ch.receive().value(), 1);
  producer.join();
  EXPECT_TRUE(sent.load());
  EXPECT_EQ(ch.receive().value(), 2);
}

TEST(ChannelTest, MpmcStress) {
  Channel<int> ch(16);
  constexpr int kPerProducer = 500;
  constexpr int kProducers = 3;
  std::atomic<long> sum{0};
  std::vector<std::thread> threads;
  for (int p = 0; p < kProducers; ++p) {
    threads.emplace_back([&ch] {
      for (int i = 1; i <= kPerProducer; ++i) ch.send(i);
    });
  }
  std::vector<std::thread> consumers;
  for (int c = 0; c < 2; ++c) {
    consumers.emplace_back([&] {
      while (auto v = ch.receive()) sum += *v;
    });
  }
  for (auto& t : threads) t.join();
  ch.close();
  for (auto& t : consumers) t.join();
  const long expected =
      kProducers * (kPerProducer * (kPerProducer + 1) / 2);
  EXPECT_EQ(sum.load(), expected);
}

TEST(ThreadPoolTest, ExecutesSubmittedTasks) {
  ThreadPool pool(2);
  auto f1 = pool.submit([] { return 6 * 7; });
  auto f2 = pool.submit([] { return std::string("ok"); });
  EXPECT_EQ(f1.get(), 42);
  EXPECT_EQ(f2.get(), "ok");
}

TEST(ThreadPoolTest, WaitIdleBlocksUntilDrained) {
  ThreadPool pool(2);
  std::atomic<int> done{0};
  for (int i = 0; i < 8; ++i) {
    pool.submit([&done] {
      std::this_thread::sleep_for(std::chrono::milliseconds(5));
      ++done;
    });
  }
  pool.wait_idle();
  EXPECT_EQ(done.load(), 8);
  EXPECT_EQ(pool.pending(), 0u);
}

TEST(ThreadPoolTest, TasksRunConcurrently) {
  ThreadPool pool(2);
  std::atomic<int> running{0};
  std::atomic<int> peak{0};
  std::vector<std::future<void>> futures;
  for (int i = 0; i < 4; ++i) {
    futures.push_back(pool.submit([&] {
      const int now = ++running;
      int expected = peak.load();
      while (now > expected && !peak.compare_exchange_weak(expected, now)) {
      }
      std::this_thread::sleep_for(std::chrono::milliseconds(30));
      --running;
    }));
  }
  for (auto& f : futures) f.get();
  EXPECT_GE(peak.load(), 2);
}

TEST(ThreadPoolTest, ExceptionsPropagateThroughFutures) {
  ThreadPool pool(1);
  auto f = pool.submit([]() -> int { throw std::runtime_error("boom"); });
  EXPECT_THROW(f.get(), std::runtime_error);
}

TEST(ThreadPoolTest, MinimumOneWorker) {
  ThreadPool pool(0);
  EXPECT_EQ(pool.size(), 1u);
  EXPECT_EQ(pool.submit([] { return 1; }).get(), 1);
}

TEST(ThreadPoolTest, SubmitAfterShutdownBreaksPromise) {
  ThreadPool pool(2);
  EXPECT_EQ(pool.submit([] { return 1; }).get(), 1);
  pool.shutdown();
  // Refused work must surface as a broken promise, not hang forever.
  auto f = pool.submit([] { return 2; });
  EXPECT_THROW(f.get(), std::future_error);
  pool.shutdown();  // idempotent
  EXPECT_EQ(pool.pending(), 0u);
}

// --- Parallel trial-execution engine ---------------------------------------

/// Deterministic, thread-safe objective: a pure function of (config,
/// resource) with some arithmetic so evaluation is not instantaneous.
double synthetic_objective(const Config& config, double resource) {
  const double x = config.at("x");
  const double n = config.at("n");
  double acc = (x - 0.3) * (x - 0.3) + std::abs(n - 20.0) / 64.0;
  for (int i = 0; i < 200; ++i) acc = std::sqrt(acc * acc + 1e-9);
  return acc / resource;
}

SearchSpace synthetic_space() {
  SearchSpace space;
  space.add(ParamSpec::real("x", 0, 1));
  space.add(ParamSpec::integer("n", 1, 64, /*log_scale=*/true));
  return space;
}

TEST(ParallelSearchTest, ParallelRungsMatchSerialForSameSeed) {
  ThreadPool pool(4);
  const HyperBandOptions hb{1, 16, 2, 0};
  for (const bool bohb : {false, true}) {
    auto make = [&] {
      return bohb ? make_bohb(synthetic_space(), hb)
                  : make_hyperband(synthetic_space(), hb);
    };
    Rng rng_serial(99);
    Rng rng_parallel(99);
    SearchResult serial = make()->optimize(synthetic_objective, rng_serial);
    SearchResult parallel = make()->optimize_batch(
        parallel_batch_eval(EvalFn(synthetic_objective), pool), rng_parallel);

    EXPECT_EQ(serial.best_config, parallel.best_config) << "bohb=" << bohb;
    EXPECT_DOUBLE_EQ(serial.best_objective, parallel.best_objective);
    ASSERT_EQ(serial.trials.size(), parallel.trials.size());
    for (std::size_t i = 0; i < serial.trials.size(); ++i) {
      EXPECT_EQ(serial.trials[i].config, parallel.trials[i].config);
      EXPECT_DOUBLE_EQ(serial.trials[i].resource, parallel.trials[i].resource);
      EXPECT_DOUBLE_EQ(serial.trials[i].objective,
                       parallel.trials[i].objective);
    }
  }
}

EdgeTuneOptions small_tuning_options(int trial_workers) {
  EdgeTuneOptions options;
  options.workload = WorkloadKind::kNlp;
  options.hyperband = {1, 4, 2, 1};
  options.runner.proxy_samples = 240;
  options.inference.algorithm = "grid";
  options.seed = 5;
  options.trial_workers = trial_workers;
  return options;
}

TEST(ParallelSearchTest, EdgeTuneParallelTrialsMatchSerial) {
  Result<TuningReport> serial = EdgeTune(small_tuning_options(1)).run();
  Result<TuningReport> parallel = EdgeTune(small_tuning_options(4)).run();
  ASSERT_TRUE(serial.ok()) << serial.status().to_string();
  ASSERT_TRUE(parallel.ok()) << parallel.status().to_string();

  EXPECT_EQ(serial.value().best_config, parallel.value().best_config);
  EXPECT_DOUBLE_EQ(serial.value().best_objective,
                   parallel.value().best_objective);
  EXPECT_DOUBLE_EQ(serial.value().best_accuracy,
                   parallel.value().best_accuracy);
  // Same trials in the same submission order; only the simulated wall clock
  // differs (makespan over 4 workers vs. the serial sum).
  ASSERT_EQ(serial.value().trials.size(), parallel.value().trials.size());
  for (std::size_t i = 0; i < serial.value().trials.size(); ++i) {
    EXPECT_EQ(serial.value().trials[i].config,
              parallel.value().trials[i].config);
    EXPECT_DOUBLE_EQ(serial.value().trials[i].accuracy,
                     parallel.value().trials[i].accuracy);
    EXPECT_DOUBLE_EQ(serial.value().trials[i].objective,
                     parallel.value().trials[i].objective);
  }
  EXPECT_LE(parallel.value().tuning_runtime_s,
            serial.value().tuning_runtime_s + 1e-9);
}

TEST(ParallelSearchTest, BatchedTpeIsDeterministicPerSeed) {
  // Constant-liar TPE at trial_workers=4 proposes 4 configs per round; the
  // whole trajectory is a pure function of the seed, so two runs agree on
  // every config and objective. Durations are NOT compared: which concurrent
  // same-arch trial wins the inference single-flight (and carries the tuning
  // bill) is scheduling-dependent.
  auto run = [] {
    EdgeTuneOptions options = small_tuning_options(4);
    options.search_algorithm = "tpe";
    return EdgeTune(options).run();
  };
  Result<TuningReport> a = run();
  Result<TuningReport> b = run();
  ASSERT_TRUE(a.ok()) << a.status().to_string();
  ASSERT_TRUE(b.ok()) << b.status().to_string();
  EXPECT_EQ(a.value().best_config, b.value().best_config);
  EXPECT_DOUBLE_EQ(a.value().best_objective, b.value().best_objective);
  ASSERT_EQ(a.value().trials.size(), b.value().trials.size());
  for (std::size_t i = 0; i < a.value().trials.size(); ++i) {
    EXPECT_EQ(a.value().trials[i].config, b.value().trials[i].config);
    EXPECT_DOUBLE_EQ(a.value().trials[i].objective,
                     b.value().trials[i].objective);
  }
}

TEST(ParallelSearchTest, HierarchicalParallelMatchesSerial) {
  // Both tiers route through the shared batch engine: tier 1 is a BOHB run
  // (parallel == serial byte-for-byte), tier 2 is the num_gpus grid as one
  // batch. The parallel run must find the same winner, and its simulated
  // wall clock (FIFO makespan) can only improve on the serial sum.
  Result<TuningReport> serial =
      run_hierarchical(small_tuning_options(1));
  Result<TuningReport> parallel =
      run_hierarchical(small_tuning_options(4));
  ASSERT_TRUE(serial.ok()) << serial.status().to_string();
  ASSERT_TRUE(parallel.ok()) << parallel.status().to_string();
  EXPECT_EQ(serial.value().best_config, parallel.value().best_config);
  EXPECT_DOUBLE_EQ(serial.value().best_objective,
                   parallel.value().best_objective);
  ASSERT_EQ(serial.value().trials.size(), parallel.value().trials.size());
  for (std::size_t i = 0; i < serial.value().trials.size(); ++i) {
    EXPECT_EQ(serial.value().trials[i].config,
              parallel.value().trials[i].config);
    EXPECT_DOUBLE_EQ(serial.value().trials[i].objective,
                     parallel.value().trials[i].objective);
  }
  EXPECT_LE(parallel.value().tuning_runtime_s,
            serial.value().tuning_runtime_s + 1e-9);
}

TEST(ParallelSearchTest, RepeatedHierarchicalRunsAreByteIdentical) {
  // The headline bug this PR fixes: with --trial-workers 4 the hierarchical
  // tier-2 grid shares one architecture across its whole batch, and the
  // single-flight tuning bill used to land on whichever trial won the
  // inference flight — a scheduling race, so repeated runs disagreed in
  // duration/billing fields even though every objective matched. Billing is
  // now resolved by content (earliest executed member pays), so ten runs at
  // four workers must serialize to EXACTLY the same bytes, durations and
  // cache flags included.
  const std::string first = [] {
    Result<TuningReport> report = run_hierarchical(small_tuning_options(4));
    EXPECT_TRUE(report.ok()) << report.status().to_string();
    return report.ok() ? report_to_json(report.value()).dump()
                       : std::string("<failed>");
  }();
  for (int run = 1; run < 10; ++run) {
    Result<TuningReport> report = run_hierarchical(small_tuning_options(4));
    ASSERT_TRUE(report.ok()) << report.status().to_string();
    EXPECT_EQ(report_to_json(report.value()).dump(), first)
        << "hierarchical report diverged on repeat run " << run;
  }
}

TEST(ParallelSearchTest, ConcurrentInferenceSubmitsOverlap) {
  // Four threads hammer submit() with distinct architectures. With the old
  // rng mutex held across the whole optimize() call, searches serialized and
  // peak_concurrent_tunes() was 1 in EVERY round. Without it, overlap is
  // certain on multicore hosts and probabilistic on a single core (it needs
  // a preemption inside a search, and individual searches are fast now that
  // the TPE good/bad split is hoisted out of the candidates loop) — so run
  // storm rounds against fresh servers until one observes overlap.
  bool overlapped = false;
  std::atomic<int> failures{0};
  for (int round = 0; round < 60 && !overlapped; ++round) {
    InferenceServerOptions options;
    options.workers = 4;
    InferenceTuningServer server(device_rpi3b(), options);
    std::vector<std::thread> threads;
    for (int t = 0; t < 4; ++t) {
      threads.emplace_back([&server, &failures, t] {
        Rng rng(static_cast<std::uint64_t>(t) + 1);
        std::vector<std::future<Result<InferenceRecommendation>>> futures;
        for (int k = 0; k < 8; ++k) {
          const std::int64_t stride = 1 + t * 8 + k;  // distinct, in [1, 32]
          Result<BuiltModel> model =
              build_text_rnn({.stride = stride, .num_classes = 4}, rng);
          if (!model.ok()) {
            ++failures;
            continue;
          }
          futures.push_back(server.submit(model.value().arch));
        }
        for (auto& f : futures) {
          if (!f.get().ok()) ++failures;
        }
      });
    }
    for (auto& t : threads) t.join();
    overlapped = server.peak_concurrent_tunes() >= 2;
  }
  EXPECT_EQ(failures.load(), 0);
  EXPECT_TRUE(overlapped);
}

TEST(ParallelSearchTest, SingleFlightDedupesConcurrentIdenticalSubmits) {
  InferenceServerOptions options;
  options.workers = 4;
  InferenceTuningServer server(device_rpi3b(), options);
  Rng rng(7);
  Result<BuiltModel> model = build_text_rnn({.stride = 3, .num_classes = 4}, rng);
  ASSERT_TRUE(model.ok());
  const ArchSpec arch = model.value().arch;

  // Eight concurrent requests for the SAME architecture: exactly one search
  // may execute; the rest join it (or hit the cache it populates).
  std::vector<std::future<Result<InferenceRecommendation>>> futures;
  futures.reserve(8);
  for (int i = 0; i < 8; ++i) futures.push_back(server.submit(arch));
  std::vector<InferenceRecommendation> recs;
  for (auto& f : futures) {
    Result<InferenceRecommendation> r = f.get();
    ASSERT_TRUE(r.ok());
    recs.push_back(r.value());
  }
  EXPECT_EQ(server.uncached_tune_runs(), 1);
  // Identical recommendation for everyone, and only the leader reports the
  // tuning bill.
  for (const InferenceRecommendation& r : recs) {
    EXPECT_EQ(r.config, recs.front().config);
    if (r.from_cache) {
      EXPECT_EQ(r.tuning_time_s, 0.0);
      EXPECT_EQ(r.tuning_energy_j, 0.0);
    }
  }

  // A different architecture is NOT deduped against the first.
  Result<BuiltModel> other = build_text_rnn({.stride = 9, .num_classes = 4}, rng);
  ASSERT_TRUE(other.ok());
  Result<InferenceRecommendation> r2 = server.tune(other.value().arch);
  ASSERT_TRUE(r2.ok());
  EXPECT_EQ(server.uncached_tune_runs(), 2);

  // And a repeat of the first is now a pure cache hit.
  Result<InferenceRecommendation> r3 = server.tune(arch);
  ASSERT_TRUE(r3.ok());
  EXPECT_TRUE(r3.value().from_cache);
  EXPECT_EQ(server.uncached_tune_runs(), 2);
}

TEST(ParallelSearchTest, SingleFlightDisabledWithCacheOff) {
  InferenceServerOptions options;
  options.workers = 2;
  options.use_cache = false;  // ablation: every request re-tunes
  InferenceTuningServer server(device_rpi3b(), options);
  Rng rng(8);
  Result<BuiltModel> model = build_text_rnn({.stride = 5, .num_classes = 4}, rng);
  ASSERT_TRUE(model.ok());
  std::vector<std::future<Result<InferenceRecommendation>>> futures;
  for (int i = 0; i < 4; ++i) futures.push_back(server.submit(model.value().arch));
  for (auto& f : futures) ASSERT_TRUE(f.get().ok());
  EXPECT_EQ(server.uncached_tune_runs(), 4);
  EXPECT_EQ(server.single_flight_joins(), 0);
}

// --- Fault tolerance under concurrency (DESIGN §5.4) -----------------------

Result<ArchSpec> tiny_arch(std::int64_t stride) {
  Rng rng(7);
  Result<BuiltModel> model =
      build_text_rnn({.stride = stride, .num_classes = 4}, rng);
  if (!model.ok()) return model.status();
  return model.value().arch;
}

TEST(FaultToleranceTest, FailedLeaderDoesNotFanOutToJoiners) {
  // fail_first=1 at inference.measure: every key's attempt 0 fails. With
  // max_attempts=2 the leader's retry recovers on attempt 1, so all eight
  // concurrent submits for the SAME architecture must succeed off a single
  // search — an injected leader fault is never inherited by its joiners.
  InferenceServerOptions options;
  options.workers = 4;
  FaultSpec fault;
  fault.site = fault_site::kInferenceMeasure;
  fault.fail_first = 1;
  options.faults = {fault};
  options.retry.max_attempts = 2;
  InferenceTuningServer server(device_rpi3b(), options);
  Result<ArchSpec> arch = tiny_arch(3);
  ASSERT_TRUE(arch.ok());

  std::vector<std::future<Result<InferenceRecommendation>>> futures;
  for (int i = 0; i < 8; ++i) futures.push_back(server.submit(arch.value()));
  for (auto& f : futures) {
    Result<InferenceRecommendation> r = f.get();
    EXPECT_TRUE(r.ok()) << r.status().to_string();
  }
  EXPECT_EQ(server.uncached_tune_runs(), 1);
  EXPECT_GE(server.fault_injector().injected(fault_site::kInferenceMeasure),
            1);
  // The recovered leader charged its backoff to simulated tuning time.
  Result<InferenceRecommendation> again = server.tune(arch.value());
  ASSERT_TRUE(again.ok());
  EXPECT_TRUE(again.value().from_cache);
}

TEST(FaultToleranceTest, JoinersReprobeInsteadOfInheritingLeaderError) {
  // Same injection but NO retries: every search attempt fails. Joiners that
  // observe the failed leader must loop back, re-probe, and run (and fail)
  // their own search — everyone gets a first-hand error, nothing hangs, and
  // the in-flight map ends empty (a later request would lead afresh).
  InferenceServerOptions options;
  options.workers = 4;
  FaultSpec fault;
  fault.site = fault_site::kInferenceMeasure;
  fault.fail_first = 1;
  options.faults = {fault};
  options.retry.max_attempts = 1;
  InferenceTuningServer server(device_rpi3b(), options);
  Result<ArchSpec> arch = tiny_arch(5);
  ASSERT_TRUE(arch.ok());

  std::vector<std::future<Result<InferenceRecommendation>>> futures;
  for (int i = 0; i < 8; ++i) futures.push_back(server.submit(arch.value()));
  for (auto& f : futures) {
    Result<InferenceRecommendation> r = f.get();
    ASSERT_FALSE(r.ok());
    EXPECT_EQ(r.status().code(), StatusCode::kUnavailable);
  }
  // Every request ran its own (failed) search: 8 leaders total, and any
  // request that ever joined later re-probed.
  EXPECT_EQ(server.uncached_tune_runs(), 8);
  EXPECT_EQ(server.single_flight_reprobes(), server.single_flight_joins());
}

TEST(FaultToleranceTest, InjectedFaultsAreIdenticalAcrossTrialWorkers) {
  // The headline determinism claim UNDER FAILURE: with a 20% unavailable
  // injection at trial.train and retries on, serial and 4-worker runs agree
  // on every trial — config, attempt count, charged backoff, and status —
  // because fault decisions and jitter are content-keyed, not order-keyed.
  auto run = [](int workers) {
    EdgeTuneOptions options = small_tuning_options(workers);
    Result<std::vector<FaultSpec>> faults =
        parse_fault_plan("site=trial.train,rate=0.2,code=unavailable");
    EXPECT_TRUE(faults.ok());
    options.faults = faults.value();
    options.trial_retry.max_attempts = 3;
    return EdgeTune(options).run();
  };
  Result<TuningReport> serial = run(1);
  Result<TuningReport> parallel = run(4);
  ASSERT_TRUE(serial.ok()) << serial.status().to_string();
  ASSERT_TRUE(parallel.ok()) << parallel.status().to_string();

  const TuningReport& s = serial.value();
  const TuningReport& p = parallel.value();
  EXPECT_EQ(s.best_config, p.best_config);
  EXPECT_DOUBLE_EQ(s.best_objective, p.best_objective);
  EXPECT_EQ(s.failed_trials, p.failed_trials);
  EXPECT_EQ(s.retried_trials, p.retried_trials);
  EXPECT_DOUBLE_EQ(s.retry_backoff_s, p.retry_backoff_s);
  ASSERT_EQ(s.trials.size(), p.trials.size());
  bool saw_retry = false;
  for (std::size_t i = 0; i < s.trials.size(); ++i) {
    EXPECT_EQ(s.trials[i].config, p.trials[i].config) << "trial " << i;
    EXPECT_EQ(s.trials[i].attempts, p.trials[i].attempts) << "trial " << i;
    EXPECT_DOUBLE_EQ(s.trials[i].retry_backoff_s,
                     p.trials[i].retry_backoff_s)
        << "trial " << i;
    EXPECT_EQ(s.trials[i].status.code(), p.trials[i].status.code())
        << "trial " << i;
    EXPECT_DOUBLE_EQ(s.trials[i].objective, p.trials[i].objective)
        << "trial " << i;
    saw_retry = saw_retry || s.trials[i].attempts > 1;
  }
  // The plan actually bit: this test must not pass vacuously.
  EXPECT_TRUE(saw_retry);
  EXPECT_GT(s.retry_backoff_s, 0);
}

TEST(ParallelSearchTest, JobServerAppliesTrialWorkersPerJob) {
  TuningJobServer serial_server(1);
  TuningJobServer parallel_server(1, /*trial_workers_per_job=*/4);
  JobRequest request;
  request.options = small_tuning_options(1);
  const JobId serial_id = serial_server.submit(request).value();
  const JobId parallel_id = parallel_server.submit(request).value();
  Result<TuningReport> serial = serial_server.wait(serial_id);
  Result<TuningReport> parallel = parallel_server.wait(parallel_id);
  ASSERT_TRUE(serial.ok());
  ASSERT_TRUE(parallel.ok());
  EXPECT_EQ(serial.value().best_config, parallel.value().best_config);
  EXPECT_DOUBLE_EQ(serial.value().best_objective,
                   parallel.value().best_objective);
}

}  // namespace
}  // namespace edgetune
