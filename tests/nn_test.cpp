// Tests for the NN library. The heart is a finite-difference gradient check
// applied to every layer: backward() must agree with numerical dL/dx and
// dL/dtheta for a random scalar loss L = sum(w ⊙ forward(x)).
#include <gtest/gtest.h>

#include <cmath>

#include "nn/conv.hpp"
#include "nn/layers_basic.hpp"
#include "nn/loss.hpp"
#include "nn/norm.hpp"
#include "nn/optimizer.hpp"
#include "nn/pool.hpp"
#include "nn/residual.hpp"
#include "nn/rnn.hpp"
#include "nn/sequential.hpp"

namespace edgetune {
namespace {

/// Scalar loss L(x) = sum(w ⊙ layer(x)) with fixed random weights w;
/// returns analytic grads and compares against central differences.
void gradient_check(Layer& layer, const Shape& input_shape,
                    std::uint64_t seed, float eps = 5e-3f,
                    float tol = 4e-2f, bool check_params = true) {
  Rng rng(seed);
  Tensor x = Tensor::randn(input_shape, rng, 0.0f, 1.0f);

  Tensor out0 = layer.forward(x, /*training=*/true);
  Tensor w = Tensor::randn(out0.shape(), rng, 0.0f, 1.0f);

  auto loss_of = [&](const Tensor& input) {
    Tensor out = layer.forward(input, true);
    double acc = 0;
    for (std::int64_t i = 0; i < out.numel(); ++i) acc += out[i] * w[i];
    return acc;
  };

  // Analytic gradients. Forward once more so caches match, zero param grads
  // first (they accumulate).
  for (auto& p : layer.params()) p.grad->fill(0.0f);
  Tensor out = layer.forward(x, true);
  (void)out;
  Tensor grad_in = layer.backward(w);

  // dL/dx via central differences (spot-check a subset for big tensors).
  const std::int64_t n = x.numel();
  const std::int64_t stride = std::max<std::int64_t>(1, n / 24);
  for (std::int64_t i = 0; i < n; i += stride) {
    Tensor xp = x, xm = x;
    xp[i] += eps;
    xm[i] -= eps;
    const double numeric = (loss_of(xp) - loss_of(xm)) / (2.0 * eps);
    const double analytic = grad_in[i];
    const double scale = std::max({1.0, std::abs(numeric), std::abs(analytic)});
    EXPECT_NEAR(analytic, numeric, tol * scale)
        << layer.name() << " dL/dx[" << i << "]";
  }

  if (!check_params) return;
  // dL/dtheta. Re-run forward/backward to refresh param grads cleanly.
  for (auto& p : layer.params()) p.grad->fill(0.0f);
  layer.forward(x, true);
  layer.backward(w);
  for (auto& p : layer.params()) {
    Tensor& theta = *p.value;
    const std::int64_t m = theta.numel();
    const std::int64_t pstride = std::max<std::int64_t>(1, m / 12);
    for (std::int64_t i = 0; i < m; i += pstride) {
      const float saved = theta[i];
      theta[i] = saved + eps;
      const double lp = loss_of(x);
      theta[i] = saved - eps;
      const double lm = loss_of(x);
      theta[i] = saved;
      const double numeric = (lp - lm) / (2.0 * eps);
      const double analytic = (*p.grad)[i];
      const double scale =
          std::max({1.0, std::abs(numeric), std::abs(analytic)});
      EXPECT_NEAR(analytic, numeric, tol * scale)
          << layer.name() << " dL/d" << p.name << "[" << i << "]";
    }
  }
}

TEST(GradCheck, Linear) {
  Rng rng(1);
  Linear layer(6, 4, rng);
  gradient_check(layer, {3, 6}, 100);
}

TEST(GradCheck, Conv2D) {
  Rng rng(2);
  Conv2D layer(2, 3, 3, 1, 1, rng, /*bias=*/true);
  gradient_check(layer, {2, 2, 5, 5}, 101);
}

TEST(GradCheck, Conv2DStridedNoBias) {
  Rng rng(3);
  Conv2D layer(1, 2, 3, 2, 1, rng, /*bias=*/false);
  gradient_check(layer, {1, 1, 7, 7}, 102);
}

TEST(GradCheck, Conv1D) {
  Rng rng(4);
  Conv1D layer(2, 3, 4, 2, 1, rng, /*bias=*/true);
  gradient_check(layer, {2, 2, 9}, 103);
}

TEST(GradCheck, BatchNorm) {
  BatchNorm layer(3);
  gradient_check(layer, {4, 3, 3, 3}, 104, 5e-3f, 6e-2f);
}

TEST(GradCheck, BatchNorm1dShape) {
  BatchNorm layer(4);
  gradient_check(layer, {6, 4}, 105, 5e-3f, 6e-2f);
}

TEST(GradCheck, ReLU) {
  ReLU layer;
  gradient_check(layer, {3, 8}, 106);
}

TEST(GradCheck, LeakyReluLayer) {
  LeakyReLU layer(0.1f);
  gradient_check(layer, {3, 8}, 120);
}

TEST(GradCheck, SigmoidLayer) {
  Sigmoid layer;
  gradient_check(layer, {3, 8}, 121);
}

TEST(GradCheck, AvgPool2D) {
  AvgPool2D layer(2, 2);
  gradient_check(layer, {2, 2, 4, 4}, 122);
}

TEST(GradCheck, AvgPool2DStrided) {
  AvgPool2D layer(3, 2);
  gradient_check(layer, {1, 2, 7, 7}, 123);
}

TEST(GradCheck, TanhLayer) {
  Tanh layer;
  gradient_check(layer, {3, 8}, 107);
}

TEST(GradCheck, MaxPool2D) {
  MaxPool2D layer(2, 2);
  gradient_check(layer, {2, 2, 4, 4}, 108);
}

TEST(GradCheck, MaxPool1D) {
  MaxPool1D layer(2, 2);
  gradient_check(layer, {2, 2, 8}, 109);
}

TEST(GradCheck, GlobalAvgPool2d) {
  GlobalAvgPool layer;
  gradient_check(layer, {2, 3, 4, 4}, 110);
}

TEST(GradCheck, GlobalAvgPool1d) {
  GlobalAvgPool1D layer;
  gradient_check(layer, {2, 3, 6}, 111);
}

TEST(GradCheck, Flatten) {
  Flatten layer;
  gradient_check(layer, {2, 3, 2, 2}, 112);
}

TEST(GradCheck, RnnStride1) {
  Rng rng(5);
  RNN layer(4, 5, 1, rng);
  gradient_check(layer, {2, 6, 4}, 113, 5e-3f, 6e-2f);
}

TEST(GradCheck, RnnStride3) {
  Rng rng(6);
  RNN layer(4, 5, 3, rng);
  gradient_check(layer, {2, 7, 4}, 114, 5e-3f, 6e-2f);
}

TEST(GradCheck, ResidualBlockIdentitySkip) {
  Rng rng(7);
  ResidualBlock layer(4, 4, 1, rng);
  // Smaller eps: the block's final ReLU has kinks at 0 and the summed skip
  // path makes crossings more likely than in a plain layer.
  gradient_check(layer, {2, 4, 4, 4}, 115, 1e-3f, 8e-2f);
}

TEST(GradCheck, ResidualBlockProjectedSkip) {
  Rng rng(8);
  ResidualBlock layer(3, 6, 2, rng);
  gradient_check(layer, {2, 3, 6, 6}, 116, 5e-3f, 8e-2f);
}

TEST(GradCheck, BottleneckBlockIdentitySkip) {
  Rng rng(21);
  BottleneckBlock layer(16, 4, 1, rng);  // in == 4*mid: identity skip
  gradient_check(layer, {2, 16, 4, 4}, 118, 3e-4f, 8e-2f);
}

TEST(GradCheck, BottleneckBlockProjectedSkip) {
  Rng rng(22);
  BottleneckBlock layer(8, 4, 2, rng);
  gradient_check(layer, {2, 8, 6, 6}, 119, 3e-4f, 8e-2f);
}

TEST(GradCheck, SequentialComposition) {
  Rng rng(9);
  Sequential net;
  net.emplace<Linear>(5, 8, rng);
  net.emplace<ReLU>();
  net.emplace<Linear>(8, 3, rng);
  gradient_check(net, {4, 5}, 117);
}

// --- Embedding (integer inputs: param grads only) -----------------------------

TEST(EmbeddingTest, GathersRowsAndAccumulatesGrads) {
  Rng rng(10);
  Embedding layer(6, 3, rng);
  Tensor ids({2, 2}, std::vector<float>{0, 5, 5, 2});
  Tensor out = layer.forward(ids, true);
  ASSERT_EQ(out.shape(), (Shape{2, 2, 3}));

  Tensor grad = Tensor::ones(out.shape());
  layer.backward(grad);
  auto params = layer.params();
  ASSERT_EQ(params.size(), 1u);
  const Tensor& wg = *params[0].grad;
  // Row 5 used twice -> grad 2 in each column; row 1 never -> 0.
  EXPECT_FLOAT_EQ(wg.at2(5, 0), 2.0f);
  EXPECT_FLOAT_EQ(wg.at2(0, 0), 1.0f);
  EXPECT_FLOAT_EQ(wg.at2(1, 0), 0.0f);
}

// --- Dropout -------------------------------------------------------------------

TEST(DropoutTest, IdentityAtInference) {
  Rng rng(11);
  Dropout layer(0.5, rng);
  Tensor x = Tensor::randn({4, 4}, rng);
  Tensor out = layer.forward(x, /*training=*/false);
  for (std::int64_t i = 0; i < x.numel(); ++i) EXPECT_FLOAT_EQ(out[i], x[i]);
}

TEST(DropoutTest, TrainingZerosAndRescales) {
  Rng rng(12);
  Dropout layer(0.5, rng);
  Tensor x = Tensor::ones({10000});
  Tensor out = layer.forward(x, true);
  std::int64_t zeros = 0;
  for (std::int64_t i = 0; i < out.numel(); ++i) {
    if (out[i] == 0.0f) {
      ++zeros;
    } else {
      EXPECT_FLOAT_EQ(out[i], 2.0f);  // 1/(1-0.5)
    }
  }
  EXPECT_NEAR(static_cast<double>(zeros) / 10000.0, 0.5, 0.03);
  // Expectation preserved.
  EXPECT_NEAR(out.mean(), 1.0f, 0.05f);
}

TEST(DropoutTest, BackwardUsesSameMask) {
  Rng rng(13);
  Dropout layer(0.3, rng);
  Tensor x = Tensor::ones({1000});
  Tensor out = layer.forward(x, true);
  Tensor grad = layer.backward(Tensor::ones({1000}));
  for (std::int64_t i = 0; i < x.numel(); ++i) {
    EXPECT_FLOAT_EQ(grad[i], out[i]);  // same mask and scale
  }
}

// --- BatchNorm statistics ------------------------------------------------------

TEST(BatchNormTest, NormalizesTrainingBatch) {
  BatchNorm layer(2);
  Rng rng(14);
  Tensor x = Tensor::randn({64, 2}, rng, 5.0f, 3.0f);
  Tensor out = layer.forward(x, true);
  for (std::int64_t c = 0; c < 2; ++c) {
    double mean = 0, var = 0;
    for (std::int64_t n = 0; n < 64; ++n) mean += out.at2(n, c);
    mean /= 64;
    for (std::int64_t n = 0; n < 64; ++n) {
      const double d = out.at2(n, c) - mean;
      var += d * d;
    }
    var /= 64;
    EXPECT_NEAR(mean, 0.0, 1e-3);
    EXPECT_NEAR(var, 1.0, 1e-2);
  }
}

TEST(BatchNormTest, InferenceUsesRunningStats) {
  BatchNorm layer(1);
  Rng rng(15);
  // Train on many batches from N(4, 2^2) so running stats converge.
  for (int i = 0; i < 200; ++i) {
    Tensor x = Tensor::randn({32, 1}, rng, 4.0f, 2.0f);
    layer.forward(x, true);
  }
  Tensor probe({1, 1}, std::vector<float>{4.0f});
  Tensor out = layer.forward(probe, false);
  EXPECT_NEAR(out[0], 0.0f, 0.15f);  // the mean maps near zero
}

// --- Losses ---------------------------------------------------------------------

TEST(LossTest, CrossEntropyKnownValue) {
  // Uniform logits over 4 classes -> loss = ln(4).
  Tensor logits = Tensor::zeros({2, 4});
  LossResult result = softmax_cross_entropy(logits, {1, 3});
  EXPECT_NEAR(result.loss, std::log(4.0), 1e-5);
}

TEST(LossTest, CrossEntropyGradientNumeric) {
  Rng rng(16);
  Tensor logits = Tensor::randn({3, 5}, rng);
  std::vector<std::int64_t> labels = {0, 4, 2};
  LossResult result = softmax_cross_entropy(logits, labels);
  const float eps = 1e-3f;
  for (std::int64_t i = 0; i < logits.numel(); i += 2) {
    Tensor lp = logits, lm = logits;
    lp[i] += eps;
    lm[i] -= eps;
    const double numeric =
        (softmax_cross_entropy(lp, labels).loss -
         softmax_cross_entropy(lm, labels).loss) /
        (2 * eps);
    EXPECT_NEAR(result.grad[i], numeric, 2e-3);
  }
}

TEST(LossTest, CrossEntropyDecreasesWithConfidence) {
  Tensor weak({1, 2}, std::vector<float>{0.1f, 0.0f});
  Tensor strong({1, 2}, std::vector<float>{5.0f, 0.0f});
  EXPECT_LT(softmax_cross_entropy(strong, {0}).loss,
            softmax_cross_entropy(weak, {0}).loss);
}

TEST(LossTest, MseKnownValueAndGrad) {
  Tensor pred({2}, std::vector<float>{1.0f, 3.0f});
  Tensor target({2}, std::vector<float>{0.0f, 1.0f});
  LossResult result = mse_loss(pred, target);
  EXPECT_NEAR(result.loss, (1.0 + 4.0) / 2.0, 1e-6);
  EXPECT_NEAR(result.grad[0], 2.0 * 1.0 / 2.0, 1e-6);
  EXPECT_NEAR(result.grad[1], 2.0 * 2.0 / 2.0, 1e-6);
}

TEST(LossTest, AccuracyCountsArgmaxMatches) {
  Tensor logits({3, 2}, std::vector<float>{2, 1,  //
                                           0, 5,  //
                                           1, 0});
  EXPECT_DOUBLE_EQ(accuracy(logits, {0, 1, 1}), 2.0 / 3.0);
}

// --- Optimizer -------------------------------------------------------------------

TEST(SgdTest, PlainStepMath) {
  Tensor w({1}, std::vector<float>{1.0f});
  Tensor g({1}, std::vector<float>{0.5f});
  std::vector<ParamRef> params = {{&w, &g, "w"}};
  SgdOptimizer opt(params, {.learning_rate = 0.1, .momentum = 0.0,
                            .weight_decay = 0.0});
  opt.step();
  EXPECT_NEAR(w[0], 1.0f - 0.1f * 0.5f, 1e-6f);
  EXPECT_FLOAT_EQ(g[0], 0.0f);  // grads cleared
}

TEST(SgdTest, MomentumAccumulates) {
  Tensor w({1}, std::vector<float>{0.0f});
  Tensor g({1}, std::vector<float>{1.0f});
  std::vector<ParamRef> params = {{&w, &g, "w"}};
  SgdOptimizer opt(params, {.learning_rate = 1.0, .momentum = 0.5,
                            .weight_decay = 0.0});
  opt.step();  // v=1, w=-1
  EXPECT_NEAR(w[0], -1.0f, 1e-6f);
  g[0] = 1.0f;
  opt.step();  // v=1.5, w=-2.5
  EXPECT_NEAR(w[0], -2.5f, 1e-6f);
}

TEST(SgdTest, WeightDecayShrinksWeights) {
  Tensor w({1}, std::vector<float>{10.0f});
  Tensor g({1}, std::vector<float>{0.0f});
  std::vector<ParamRef> params = {{&w, &g, "w"}};
  SgdOptimizer opt(params, {.learning_rate = 0.1, .momentum = 0.0,
                            .weight_decay = 0.1});
  opt.step();
  EXPECT_LT(w[0], 10.0f);
}

TEST(TrainingTest, TinyNetFitsLinearlySeparableData) {
  Rng rng(17);
  Sequential net;
  net.emplace<Linear>(2, 16, rng);
  net.emplace<ReLU>();
  net.emplace<Linear>(16, 2, rng);
  SgdOptimizer opt(net.params(), {.learning_rate = 0.1, .momentum = 0.9});

  // Class = sign of x0 + x1.
  Tensor inputs({64, 2});
  std::vector<std::int64_t> labels(64);
  for (int i = 0; i < 64; ++i) {
    const auto x0 = static_cast<float>(rng.uniform(-1, 1));
    const auto x1 = static_cast<float>(rng.uniform(-1, 1));
    inputs[i * 2] = x0;
    inputs[i * 2 + 1] = x1;
    labels[static_cast<std::size_t>(i)] = (x0 + x1 > 0) ? 1 : 0;
  }
  double first_loss = 0, last_loss = 0;
  for (int step = 0; step < 150; ++step) {
    Tensor logits = net.forward(inputs, true);
    LossResult loss = softmax_cross_entropy(logits, labels);
    net.backward(loss.grad);
    opt.step();
    if (step == 0) first_loss = loss.loss;
    last_loss = loss.loss;
  }
  EXPECT_LT(last_loss, first_loss * 0.2);
  Tensor logits = net.forward(inputs, false);
  EXPECT_GT(accuracy(logits, labels), 0.95);
}

// --- describe() consistency -----------------------------------------------------

TEST(DescribeTest, OutputShapesMatchForward) {
  Rng rng(18);
  Sequential net;
  net.emplace<Conv2D>(3, 4, 3, 1, 1, rng, false);
  net.emplace<BatchNorm>(4);
  net.emplace<ReLU>();
  net.emplace<MaxPool2D>(2, 2);
  net.emplace<GlobalAvgPool>();
  net.emplace<Linear>(4, 10, rng);

  const Shape input_shape = {2, 3, 8, 8};
  Rng xr(19);
  Tensor x = Tensor::randn(input_shape, xr);
  Tensor out = net.forward(x, false);
  LayerInfo info = net.describe(input_shape);
  EXPECT_EQ(info.output_shape, out.shape());
  EXPECT_GT(info.flops_forward, 0);
  EXPECT_GT(info.param_count, 0);
}

TEST(DescribeTest, FlopsScaleWithBatch) {
  Rng rng(20);
  Linear layer(8, 8, rng);
  const double f1 = layer.describe({1, 8}).flops_forward;
  const double f4 = layer.describe({4, 8}).flops_forward;
  EXPECT_DOUBLE_EQ(f4, 4 * f1);
}

}  // namespace
}  // namespace edgetune
